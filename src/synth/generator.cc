#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace dbs::synth {
namespace {

// True when boxes [a_lo, a_hi] and [b_lo, b_hi], each inflated by gap/2 on
// every side, overlap in every dimension (i.e. the originals are closer
// than `gap` apart).
bool BoxesOverlap(const std::vector<double>& a_lo,
                  const std::vector<double>& a_hi,
                  const std::vector<double>& b_lo,
                  const std::vector<double>& b_hi, double gap) {
  for (size_t j = 0; j < a_lo.size(); ++j) {
    if (a_hi[j] + gap < b_lo[j] || b_hi[j] + gap < a_lo[j]) return false;
  }
  return true;
}

}  // namespace

std::vector<int64_t> ClusterPointCounts(int num_clusters, int64_t total,
                                        double size_ratio) {
  DBS_CHECK(num_clusters > 0);
  DBS_CHECK(total >= num_clusters);
  DBS_CHECK(size_ratio >= 1.0);
  // Geometric progression from 1 down to 1/size_ratio, normalized to total.
  std::vector<double> raw(num_clusters);
  double sum = 0.0;
  for (int c = 0; c < num_clusters; ++c) {
    double t = num_clusters > 1
                   ? static_cast<double>(c) / (num_clusters - 1)
                   : 0.0;
    raw[c] = std::pow(size_ratio, -t);
    sum += raw[c];
  }
  std::vector<int64_t> counts(num_clusters);
  int64_t assigned = 0;
  for (int c = 0; c < num_clusters; ++c) {
    counts[c] = std::max<int64_t>(
        1, static_cast<int64_t>(raw[c] / sum * static_cast<double>(total)));
    assigned += counts[c];
  }
  // Distribute the rounding remainder onto the largest cluster.
  counts[0] += total - assigned;
  DBS_CHECK(counts[0] >= 1);
  return counts;
}

[[nodiscard]] Result<ClusteredDataset> MakeClusteredDataset(
    const ClusteredDatasetOptions& options) {
  if (options.dim <= 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.num_cluster_points < options.num_clusters) {
    return Status::InvalidArgument("need at least one point per cluster");
  }
  if (options.size_ratio < 1.0) {
    return Status::InvalidArgument("size_ratio must be >= 1");
  }
  if (options.min_extent <= 0 || options.max_extent > 1 ||
      options.min_extent > options.max_extent) {
    return Status::InvalidArgument("invalid extent range");
  }
  if (options.noise_multiplier < 0) {
    return Status::InvalidArgument("noise_multiplier cannot be negative");
  }
  if (options.min_separation < 0) {
    return Status::InvalidArgument("min_separation cannot be negative");
  }

  Rng rng(options.seed);
  const int d = options.dim;

  // Place non-overlapping boxes by rejection; shrink extents if placement
  // stalls so generation always terminates.
  std::vector<std::vector<double>> los;
  std::vector<std::vector<double>> his;
  double max_extent = options.max_extent;
  double min_extent = options.min_extent;
  int stalls = 0;
  while (static_cast<int>(los.size()) < options.num_clusters) {
    std::vector<double> lo(d);
    std::vector<double> hi(d);
    for (int j = 0; j < d; ++j) {
      double extent = rng.NextDouble(min_extent, max_extent);
      double start = rng.NextDouble(0.0, 1.0 - extent);
      lo[j] = start;
      hi[j] = start + extent;
    }
    bool overlaps = false;
    for (size_t c = 0; c < los.size() && !overlaps; ++c) {
      overlaps = BoxesOverlap(lo, hi, los[c], his[c],
                              options.min_separation);
    }
    if (overlaps) {
      if (++stalls > 200) {
        // Too crowded at this size; shrink and retry.
        max_extent = std::max(min_extent, max_extent * 0.8);
        min_extent = std::max(0.005, min_extent * 0.8);
        stalls = 0;
      }
      continue;
    }
    stalls = 0;
    los.push_back(std::move(lo));
    his.push_back(std::move(hi));
  }

  ClusteredDataset out;
  out.points = data::PointSet(d);
  std::vector<int64_t> counts = ClusterPointCounts(
      options.num_clusters, options.num_cluster_points, options.size_ratio);
  int64_t noise_count = static_cast<int64_t>(
      options.noise_multiplier *
      static_cast<double>(options.num_cluster_points));
  out.points.Reserve(options.num_cluster_points + noise_count);

  std::vector<double> buf(d);
  for (int c = 0; c < options.num_clusters; ++c) {
    out.truth.regions.push_back(Region::Box(los[c], his[c]));
    for (int64_t i = 0; i < counts[c]; ++i) {
      for (int j = 0; j < d; ++j) {
        buf[j] = rng.NextDouble(los[c][j], his[c][j]);
      }
      out.points.Append(buf);
      out.truth.labels.push_back(c);
    }
  }
  for (int64_t i = 0; i < noise_count; ++i) {
    for (int j = 0; j < d; ++j) buf[j] = rng.NextDouble();
    out.points.Append(buf);
    out.truth.labels.push_back(-1);
  }
  if (options.shuffle) {
    std::vector<int64_t> order(static_cast<size_t>(out.points.size()));
    for (int64_t i = 0; i < out.points.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    out.points = out.points.Gather(order);
    std::vector<int32_t> labels(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      labels[i] = out.truth.labels[static_cast<size_t>(order[i])];
    }
    out.truth.labels = std::move(labels);
  }
  return out;
}

}  // namespace dbs::synth
