// Simulated geospatial datasets — substitutes for the paper's real data.
//
// The paper evaluates on postal-address datasets (NorthEast: 130,000
// addresses with New York / Philadelphia / Boston as dense metropolitan
// clusters buried in widespread rural "noise"; California: 62,553
// addresses). Those files are not redistributable here, so these
// generators synthesize point sets with the same structural signature the
// experiments rely on: a few extremely dense metro blobs, low-density
// corridors connecting them (rural roads/towns), and broad scattered
// background. The headline behavior transfers: uniform samples drown the
// metros in background, density-biased samples with a >= 0.5 keep them
// (paper §4.3 "Real Datasets").

#ifndef DBS_SYNTH_GEO_H_
#define DBS_SYNTH_GEO_H_

#include <cstdint>

#include "synth/generator.h"
#include "util/status.h"

namespace dbs::synth {

struct GeoDatasetOptions {
  // Total points; defaults match the paper's dataset sizes.
  int64_t num_points = 130000;
  uint64_t seed = 1;
};

// NorthEast-like: three metro blobs (NY, Philadelphia, Boston analogues)
// along a southwest-northeast diagonal, corridor points between them, and
// scattered rural background. Regions = the three metro discs.
[[nodiscard]] Result<ClusteredDataset> MakeNorthEastLike(const GeoDatasetOptions& options);

// California-like: two metro blobs (LA, Bay Area analogues) along a long
// coastal arc with corridor and background points. Regions = the two
// metro discs.
[[nodiscard]] Result<ClusteredDataset> MakeCaliforniaLike(const GeoDatasetOptions& options);

}  // namespace dbs::synth

#endif  // DBS_SYNTH_GEO_H_
