#include "util/math.h"

#include <cmath>

#include "util/check.h"

namespace dbs {

double BallVolume(int dim, double radius) {
  DBS_CHECK(dim > 0);
  DBS_CHECK(radius >= 0);
  double d = static_cast<double>(dim);
  return std::pow(M_PI, d / 2.0) / std::tgamma(d / 2.0 + 1.0) *
         std::pow(radius, d);
}

double CubeVolume(int dim, double radius) {
  DBS_CHECK(dim > 0);
  DBS_CHECK(radius >= 0);
  return std::pow(2.0 * radius, dim);
}

double CrossPolytopeVolume(int dim, double radius) {
  DBS_CHECK(dim > 0);
  DBS_CHECK(radius >= 0);
  return std::pow(2.0 * radius, dim) /
         std::tgamma(static_cast<double>(dim) + 1.0);
}

double SafePow(double x, double a) {
  if (x <= 0.0) return 0.0;
  if (a == 0.0) return 1.0;
  return std::pow(x, a);
}

double HaltonValue(uint64_t index, uint32_t base) {
  DBS_CHECK(base >= 2);
  double f = 1.0;
  double r = 0.0;
  // Skip index 0 (always 0) so sequences start inside the interval.
  uint64_t i = index + 1;
  while (i > 0) {
    f /= static_cast<double>(base);
    r += f * static_cast<double>(i % base);
    i /= base;
  }
  return r;
}

uint32_t SmallPrime(int i) {
  static constexpr uint32_t kPrimes[16] = {2,  3,  5,  7,  11, 13, 17, 19,
                                           23, 29, 31, 37, 41, 43, 47, 53};
  DBS_CHECK(i >= 0 && i < 16);
  return kPrimes[i];
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace dbs
