// Streaming and batch descriptive statistics.
//
// OnlineMoments implements Welford's numerically-stable single-pass
// mean/variance, used by the density module to derive bandwidths from the
// same pass that samples kernel centers. The free functions operate on
// vectors and are used mainly by tests and the evaluation harness.

#ifndef DBS_UTIL_STATS_H_
#define DBS_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace dbs {

// Single-variable streaming moments (Welford).
class OnlineMoments {
 public:
  void Add(double x);
  // Merges another accumulator (parallel-friendly Chan et al. update).
  void Merge(const OnlineMoments& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance (division by n). Zero when count < 1.
  double variance() const;
  // Sample variance (division by n-1). Zero when count < 2.
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Raw sum of squared deviations — exposed so partial-build states can be
  // serialized and rebuilt bit-for-bit (util/shard.h merge contract).
  double m2() const { return m2_; }

  // Rebuilds an accumulator from serialized raw parts. The result is
  // bitwise identical to the accumulator the parts were read from.
  static OnlineMoments FromParts(int64_t count, double mean, double m2,
                                 double min, double max);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Sample standard deviation of `values`; 0 when fewer than two values.
double SampleStddev(const std::vector<double>& values);

// Linear-interpolation percentile, q in [0, 1]. Sorts a copy.
double Percentile(std::vector<double> values, double q);

// Pearson chi-square statistic for observed vs expected counts.
// Buckets with expected <= 0 are skipped.
double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected);

// Upper critical value of the chi-square distribution with `dof` degrees of
// freedom at significance 0.001, via the Wilson-Hilferty approximation.
// Used by statistical tests to make randomized assertions robust.
double ChiSquareCritical999(int dof);

}  // namespace dbs

#endif  // DBS_UTIL_STATS_H_
