// Shard arithmetic shared by every partial-build API (DESIGN.md §12).
//
// A sharded build splits a dataset of `total_rows` rows into `num_shards`
// contiguous [begin, end) row ranges. Everything that must agree across
// processes — the range covered by shard i, the kernel-center quota it
// samples, the RNG stream it draws from — is a pure function of
// (total_rows, num_shards, shard, seed) defined here, so independently
// launched workers reach byte-identical partial states without talking to
// each other.
//
// The merge contract rests on two rules this header encodes:
//   1. Shard 0 of a single-shard build consumes the legacy RNG stream
//      (ShardSeed(seed, 0) == seed), which is what pins the shards=1 path
//      bitwise identical to the unsharded builders.
//   2. Merging partial states performs no floating-point arithmetic — it is
//      a sorted disjoint union of per-shard summaries (MergeShardParts), and
//      all numeric reduction happens exactly once, in ascending shard order,
//      at finalize time. That makes the tree-reduce Merge associative and
//      commutative by construction, bitwise.

#ifndef DBS_UTIL_SHARD_H_
#define DBS_UTIL_SHARD_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dbs {

// Identifies one shard of a sharded build. total_rows is the size of the
// WHOLE dataset, not of the shard's slice.
struct ShardInfo {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
};

[[nodiscard]] inline Status ValidateShardInfo(const ShardInfo& info) {
  if (info.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (info.shard < 0 || info.shard >= info.num_shards) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (info.total_rows < 0) {
    return Status::InvalidArgument("total_rows must be non-negative");
  }
  return Status::Ok();
}

// Half-open row range [begin, end).
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

// Contiguous balanced partition: the first (total_rows % num_shards) shards
// get one extra row. Ranges are disjoint and cover [0, total_rows) exactly.
inline RowRange ShardRowRange(int64_t total_rows, int64_t num_shards,
                              int64_t shard) {
  const int64_t base = total_rows / num_shards;
  const int64_t extra = total_rows % num_shards;
  RowRange range;
  range.begin = shard * base + std::min(shard, extra);
  range.end = range.begin + base + (shard < extra ? 1 : 0);
  return range;
}

// Splits a kernel-center budget of `m` across shards proportionally to their
// row counts (largest-remainder apportionment, ties to the lower shard
// index). Quotas sum to exactly m, and a shard's quota never exceeds its row
// count when m <= total_rows — so the merged center set has exactly
// min(m, total_rows) centers, matching the unsharded reservoir. Rows are the
// ShardRowRange sizes, so every participant computes the same quotas.
inline std::vector<int64_t> ShardKernelAllocation(int64_t total_rows,
                                                  int64_t num_shards,
                                                  int64_t m) {
  std::vector<int64_t> quota(static_cast<size_t>(num_shards), 0);
  if (total_rows <= 0) return quota;
  std::vector<std::pair<int64_t, int64_t>> remainder;  // (-rem, shard)
  remainder.reserve(static_cast<size_t>(num_shards));
  int64_t assigned = 0;
  for (int64_t i = 0; i < num_shards; ++i) {
    const int64_t rows = ShardRowRange(total_rows, num_shards, i).size();
    const int64_t scaled = m * rows;  // fits: m, rows bounded by practice
    quota[static_cast<size_t>(i)] = scaled / total_rows;
    assigned += quota[static_cast<size_t>(i)];
    remainder.emplace_back(-(scaled % total_rows), i);
  }
  std::sort(remainder.begin(), remainder.end());
  for (int64_t r = m - assigned, i = 0; r > 0; --r, ++i) {
    quota[static_cast<size_t>(remainder[static_cast<size_t>(i)].second)] += 1;
  }
  return quota;
}

// Per-shard RNG seed. Shard 0 passes the user seed through unchanged so a
// single-shard build consumes the exact RNG stream the unsharded builders
// consume; other shards get a splitmix64-style decorrelated stream.
inline uint64_t ShardSeed(uint64_t seed, int64_t shard) {
  if (shard == 0) return seed;
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(shard);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Sorted disjoint union of per-shard summaries — the one merge primitive
// every partial state uses. Part must expose `shard`, `num_shards` and
// `total_rows` members. No arithmetic happens here: the result is the
// two inputs' parts interleaved into ascending shard order, which is why
// merge order cannot affect the finalized model.
template <typename Part>
[[nodiscard]] Status MergeShardParts(std::vector<Part>* into, std::vector<Part>&& from) {
  if (into->empty()) {
    *into = std::move(from);
    return Status::Ok();
  }
  if (from.empty()) return Status::Ok();
  if (into->front().num_shards != from.front().num_shards ||
      into->front().total_rows != from.front().total_rows) {
    return Status::InvalidArgument(
        "cannot merge partial states from different sharded builds");
  }
  std::vector<Part> merged;
  merged.reserve(into->size() + from.size());
  auto a = into->begin();
  auto b = from.begin();
  while (a != into->end() || b != from.end()) {
    if (b == from.end() ||
        (a != into->end() && a->shard < b->shard)) {
      merged.push_back(std::move(*a++));
    } else {
      merged.push_back(std::move(*b++));
    }
  }
  for (size_t i = 1; i < merged.size(); ++i) {
    if (merged[i - 1].shard == merged[i].shard) {
      return Status::InvalidArgument(
          "duplicate shard in partial-state merge");
    }
  }
  *into = std::move(merged);
  return Status::Ok();
}

}  // namespace dbs

#endif  // DBS_UTIL_SHARD_H_
