// Error propagation without exceptions.
//
// Fallible public APIs return Status (or Result<T> when they produce a
// value). The design follows the Arrow/Abseil convention: a small set of
// error codes plus a human-readable message, cheap to pass by value, and a
// DBS_RETURN_IF_ERROR macro for propagation.

#ifndef DBS_UTIL_STATUS_H_
#define DBS_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace dbs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kIoError,
  kInternal,
  // The operation was refused because a resource is saturated (e.g. a full
  // request queue); retrying later may succeed.
  kUnavailable,
};

// Returns a short stable name for a code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries an error code and message. The type is
// [[nodiscard]] so the compiler flags any call that drops an error on the
// floor; dbs_lint's nodiscard-status/unchecked-status rules enforce the
// same contract at declaration sites.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

// Result<T> holds either a value or an error Status. Accessing the value of
// an errored Result is a checked fatal error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : storage_(std::move(value)) {}
  Result(Status status) : storage_(std::move(status)) {
    DBS_CHECK_MSG(!std::get<Status>(storage_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    DBS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(storage_);
  }
  T& value() & {
    DBS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(storage_);
  }
  T&& value() && {
    DBS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

#define DBS_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dbs::Status _dbs_status = (expr);      \
    if (!_dbs_status.ok()) return _dbs_status; \
  } while (false)

// Assigns the value of a Result expression to `lhs`, returning the error
// Status on failure. `lhs` may include a declaration, e.g.
//   DBS_ASSIGN_OR_RETURN(auto sample, sampler.Run(scan));
#define DBS_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  DBS_ASSIGN_OR_RETURN_IMPL(                                   \
      DBS_STATUS_MACRO_CONCAT(_dbs_result, __LINE__), lhs, rexpr)

#define DBS_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#define DBS_STATUS_MACRO_CONCAT_INNER(x, y) x##y
#define DBS_STATUS_MACRO_CONCAT(x, y) DBS_STATUS_MACRO_CONCAT_INNER(x, y)

}  // namespace dbs

#endif  // DBS_UTIL_STATUS_H_
