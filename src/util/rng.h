// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (samplers, generators, Monte
// Carlo integration) draw from Rng so that every experiment is exactly
// reproducible from a seed. The engine is xoshiro256++ seeded through
// splitmix64, which passes BigCrush and is much faster than std::mt19937_64.
//
// Rng::Fork(stream) derives an independent child generator; use it to give
// each component of a pipeline its own stream so that adding draws to one
// stage does not perturb the others.

#ifndef DBS_UTIL_RNG_H_
#define DBS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbs {

class Rng {
 public:
  // Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64 random bits.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Standard normal via Box-Muller (caches the second variate).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Exponential with the given rate (> 0).
  double NextExponential(double rate);

  // Uniform point inside the unit d-ball, written into out[0..d).
  void NextInUnitBall(int dim, double* out);

  // An independent generator derived from this one's seed and `stream`.
  // Forking with distinct stream ids yields decorrelated sequences and does
  // not advance this generator.
  Rng Fork(uint64_t stream) const;

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  Rng(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3);

  uint64_t state_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dbs

#endif  // DBS_UTIL_RNG_H_
