#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace dbs {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  state_[0] = SplitMix64(sm);
  state_[1] = SplitMix64(sm);
  state_[2] = SplitMix64(sm);
  state_[3] = SplitMix64(sm);
}

Rng::Rng(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3) : seed_(s0) {
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  // xoshiro must not be seeded with all zeros.
  if ((s0 | s1 | s2 | s3) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  DBS_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DBS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  DBS_DCHECK(rate > 0);
  return -std::log(1.0 - NextDouble()) / rate;
}

void Rng::NextInUnitBall(int dim, double* out) {
  DBS_DCHECK(dim > 0);
  // Rejection sampling is efficient for the dimensions this library targets
  // (d <= ~8); fall back to the Gaussian-direction method above that.
  if (dim <= 8) {
    while (true) {
      double norm2 = 0.0;
      for (int j = 0; j < dim; ++j) {
        out[j] = NextDouble(-1.0, 1.0);
        norm2 += out[j] * out[j];
      }
      if (norm2 <= 1.0) return;
    }
  }
  double norm2 = 0.0;
  for (int j = 0; j < dim; ++j) {
    out[j] = NextGaussian();
    norm2 += out[j] * out[j];
  }
  double norm = std::sqrt(norm2);
  // Radius distributed as U^(1/d) makes the point uniform in the ball.
  double radius = std::pow(NextDouble(), 1.0 / dim);
  double scale = (norm > 0) ? radius / norm : 0.0;
  for (int j = 0; j < dim; ++j) out[j] *= scale;
}

Rng Rng::Fork(uint64_t stream) const {
  // Derive child state from (seed, stream) through splitmix64 so children
  // with different stream ids are decorrelated from each other and from the
  // parent's output sequence.
  uint64_t sm = seed_ ^ (0xda3e39cb94b95bdbULL * (stream + 1));
  uint64_t s0 = SplitMix64(sm);
  uint64_t s1 = SplitMix64(sm);
  uint64_t s2 = SplitMix64(sm);
  uint64_t s3 = SplitMix64(sm);
  return Rng(s0, s1, s2, s3);
}

}  // namespace dbs
