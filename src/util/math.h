// Small mathematical helpers shared across modules.

#ifndef DBS_UTIL_MATH_H_
#define DBS_UTIL_MATH_H_

#include <cstdint>

namespace dbs {

// Volume of the d-dimensional L2 ball of radius r:
//   V_d(r) = pi^(d/2) / Gamma(d/2 + 1) * r^d.
double BallVolume(int dim, double radius);

// Volume of the d-dimensional Linf ball (axis-aligned cube of half-width r).
double CubeVolume(int dim, double radius);

// Volume of the d-dimensional L1 ball (cross-polytope): (2r)^d / d!.
double CrossPolytopeVolume(int dim, double radius);

// x^a with the convention 0^a = 0 for a > 0, and 0^a treated as 0 for
// a <= 0 as well (a zero-density point contributes nothing to biased
// sampling regardless of the exponent sign; see BiasedSampler).
double SafePow(double x, double a);

// Element of the Halton low-discrepancy sequence: index i (>= 0) in the
// given prime base, in [0, 1).
double HaltonValue(uint64_t index, uint32_t base);

// The i-th prime (0-indexed) among the first 16 primes; used to pick Halton
// bases per dimension. i must be < 16.
uint32_t SmallPrime(int i);

// Greatest common divisor.
uint64_t Gcd(uint64_t a, uint64_t b);

}  // namespace dbs

#endif  // DBS_UTIL_MATH_H_
