// Lightweight invariant-checking macros.
//
// DBS_CHECK aborts with a message when an internal invariant is violated; it
// is always on. DBS_DCHECK compiles away outside debug builds and is meant
// for hot paths; DBS_ASSERT is its message-carrying form for stating
// contracts (queue bounds, ordering invariants) whose violation text should
// name the broken promise, not just the expression. Neither is a substitute
// for Status-based error handling at API boundaries: use them only for
// conditions that indicate a bug in this library, never for bad user input.

#ifndef DBS_UTIL_CHECK_H_
#define DBS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define DBS_CHECK(condition)                                               \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "DBS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define DBS_CHECK_MSG(condition, msg)                                      \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "DBS_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #condition, msg);                   \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define DBS_DCHECK(condition) \
  do {                        \
  } while (false)
#define DBS_ASSERT(condition, msg) \
  do {                             \
  } while (false)
#else
#define DBS_DCHECK(condition) DBS_CHECK(condition)
#define DBS_ASSERT(condition, msg) DBS_CHECK_MSG(condition, msg)
#endif

#endif  // DBS_UTIL_CHECK_H_
