#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbs {

void OnlineMoments::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineMoments::Merge(const OnlineMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

OnlineMoments OnlineMoments::FromParts(int64_t count, double mean, double m2,
                                       double min, double max) {
  OnlineMoments m;
  m.count_ = count;
  m.mean_ = mean;
  m.m2_ = m2;
  m.min_ = min;
  m.max_ = max;
  return m;
}

double OnlineMoments::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineMoments::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

double OnlineMoments::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleStddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  OnlineMoments m;
  for (double v : values) m.Add(v);
  return m.sample_stddev();
}

double Percentile(std::vector<double> values, double q) {
  DBS_CHECK(!values.empty());
  DBS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected) {
  DBS_CHECK(observed.size() == expected.size());
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double ChiSquareCritical999(int dof) {
  DBS_CHECK(dof > 0);
  // Wilson-Hilferty: chi2_q(k) ~ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3.
  // z at 0.999 one-sided.
  const double z = 3.090232306167814;
  double k = static_cast<double>(dof);
  double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

}  // namespace dbs
