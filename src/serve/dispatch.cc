#include "serve/dispatch.h"

#include <utility>

namespace dbs::serve {
namespace {

DispatchResult Reject(const Status& status) {
  DispatchResult result;
  result.response = {MessageType::kErrorResponse,
                     EncodeErrorResponse(status)};
  result.close = true;
  return result;
}

DispatchResult AnswerError(const Status& status) {
  DispatchResult result;
  result.response = {MessageType::kErrorResponse,
                     EncodeErrorResponse(status)};
  return result;
}

DispatchResult Answer(MessageType type, std::vector<uint8_t> payload) {
  DispatchResult result;
  result.response = {type, std::move(payload)};
  return result;
}

}  // namespace

DispatchResult DispatchFrame(ModelService* service, const Frame& frame) {
  switch (frame.type) {
    case MessageType::kRegisterRequest: {
      auto request = DecodeRegisterRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      Status status = service->Register(*request);
      if (!status.ok()) return AnswerError(status);
      return Answer(MessageType::kOkResponse, {});
    }
    case MessageType::kEvictRequest: {
      auto request = DecodeEvictRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      Status status = service->Evict(*request);
      if (!status.ok()) return AnswerError(status);
      return Answer(MessageType::kOkResponse, {});
    }
    case MessageType::kDensityRequest: {
      auto request = DecodeDensityRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      auto response = service->Density(*request);
      if (!response.ok()) return AnswerError(response.status());
      return Answer(MessageType::kDensityResponse,
                    EncodeDensityResponse(*response));
    }
    case MessageType::kSampleRequest: {
      auto request = DecodeSampleRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      auto response = service->Sample(*request);
      if (!response.ok()) return AnswerError(response.status());
      return Answer(MessageType::kSampleResponse,
                    EncodeSampleResponse(*response));
    }
    case MessageType::kOutlierRequest: {
      auto request = DecodeOutlierRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      auto response = service->OutlierScores(*request);
      if (!response.ok()) return AnswerError(response.status());
      return Answer(MessageType::kOutlierResponse,
                    EncodeOutlierResponse(*response));
    }
    case MessageType::kPartialFitRequest: {
      auto request = DecodePartialFitRequest(frame.payload);
      if (!request.ok()) return Reject(request.status());
      auto response = service->PartialFit(*request);
      if (!response.ok()) return AnswerError(response.status());
      return Answer(MessageType::kPartialFitResponse,
                    EncodePartialKde(*response));
    }
    case MessageType::kStatsRequest: {
      StatsResponse response = service->Stats();
      return Answer(MessageType::kStatsResponse,
                    EncodeStatsResponse(response));
    }
    case MessageType::kShutdownRequest: {
      DispatchResult result = Answer(MessageType::kOkResponse, {});
      result.shutdown = true;
      result.close = true;
      return result;
    }
    case MessageType::kShmAttachRequest:
      // The handshake is transport plumbing, not a service request: the TCP
      // accept loop intercepts it before dispatch, and over a ring it makes
      // no sense (the session already exists).
      return AnswerError(Status::FailedPrecondition(
          "shm attach is only valid on the TCP control connection"));
    default:
      return Reject(
          Status::InvalidArgument("response message sent as a request"));
  }
}

}  // namespace dbs::serve
