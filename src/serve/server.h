// Serving daemon front end: loopback TCP plus the shared-memory transport.
//
// One acceptor thread plus one thread per connection: each client issues
// blocking request/response exchanges over its own socket, so N clients put
// N requests in flight and the BatchExecutor multiplexes the actual work.
// The server owns no models and no policy — every decoded request is handed
// to the shared ModelService via DispatchFrame, which is what keeps served
// answers identical to in-process library calls.
//
// Colocated clients can upgrade a connection to the shared-memory transport
// (DESIGN.md §13): a kShmAttachRequest names a client-created region holding
// an SPSC ring pair, the server maps it and the drain thread takes over that
// client's request stream — the TCP connection stays open only as the
// session's lifetime anchor. Responses are produced by the same dispatch
// path and codec either way, so they are bitwise identical across
// transports.
//
// Lifecycle: Start binds 127.0.0.1 (port 0 picks an ephemeral port,
// reported by port()); Stop() — also run by the destructor — closes the
// listener and all connection sockets, stops the shm drain, then joins
// every thread. A client can end the daemon remotely with a shutdown frame
// over either transport; WaitForShutdown blocks until that frame arrives
// (or Stop is called), which is how dbsd sleeps.

#ifndef DBS_SERVE_SERVER_H_
#define DBS_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "serve/shm_transport.h"
#include "serve/wire.h"
#include "util/status.h"

namespace dbs::serve {

struct ServerOptions {
  // 0 = pick an ephemeral port.
  uint16_t port = 0;
  // Listen backlog.
  int backlog = 64;
  // Accept kShmAttachRequest upgrades. Off = attach requests are answered
  // with kFailedPrecondition and clients fall back to TCP.
  bool enable_shm = true;
  // Frames the drain thread pops per session per sweep.
  int shm_drain_batch = 32;
};

class Server {
 public:
  // Binds and starts accepting. `service` is not owned and must outlive
  // the server.
  [[nodiscard]] static Result<std::unique_ptr<Server>> Start(ModelService* service,
                                               const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (the actual one when options.port was 0).
  uint16_t port() const { return port_; }

  // Blocks until a client sends a shutdown frame or Stop() runs.
  void WaitForShutdown();

  // Stops accepting, closes all connections, joins all threads. Idempotent.
  void Stop();

 private:
  Server(ModelService* service, int listen_fd, uint16_t port,
         const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  // Decodes and executes one request frame; returns false when the
  // connection should close (peer gone, framing violation or shutdown).
  bool ServeOne(int fd, const Frame& frame);
  // Handles the shm upgrade handshake for connection `fd`.
  [[nodiscard]] Status AttachShm(int fd, const Frame& frame);
  void RequestShutdown();

  ModelService* service_;
  int listen_fd_;
  uint16_t port_;
  ServerOptions options_;

  // Drain thread for attached shm sessions; null when enable_shm is off.
  std::unique_ptr<ShmServerDrain> drain_;

  std::thread acceptor_;

  // Guards the shutdown flags and fd lists below. Ordered after nothing:
  // handlers never call back into Server while holding their own locks,
  // and mu_ is released before closing fds or joining threads.
  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::vector<int> connection_fds_;
  // Connections that upgraded to shm (keyed by fd), detached on close.
  std::vector<int> shm_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_SERVER_H_
