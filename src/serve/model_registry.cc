#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "density/dual_tree_kde.h"
#include "density/kde.h"
#include "density/kde_io.h"

namespace dbs::serve {

Status ModelRegistry::Put(
    const std::string& name,
    std::shared_ptr<const density::DensityEstimator> model,
    const std::string& kind) {
  if (name.empty()) {
    return Status::InvalidArgument("model name cannot be empty");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("cannot register a null model: " + name);
  }
  ModelEntry entry;
  entry.name = name;
  entry.kind = kind;
  entry.dim = model->dim();
  entry.total_mass = model->total_mass();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    entry.generation = it->second.entry.generation + 1;
    it->second.model = std::move(model);
    it->second.entry = std::move(entry);
  } else {
    slots_.emplace(name, Slot{std::move(model), std::move(entry)});
  }
  return Status::Ok();
}

Status ModelRegistry::LoadKdeFile(const std::string& name,
                                  const std::string& path) {
  auto kde = density::LoadKde(path);
  if (!kde.ok()) return kde.status();
  auto model = std::make_shared<const density::Kde>(std::move(kde).value());
  return Put(name, std::move(model), "kde");
}

Status ModelRegistry::LoadKdeFileDualTree(const std::string& name,
                                          const std::string& path,
                                          double rel_error) {
  auto kde = density::LoadKde(path);
  if (!kde.ok()) return kde.status();
  density::DualTreeKdeOptions options;
  options.rel_error = rel_error;
  auto tree = density::DualTreeKde::Build(kde.value(), options);
  if (!tree.ok()) return tree.status();
  auto model =
      std::make_shared<const density::DualTreeKde>(std::move(tree).value());
  return Put(name, std::move(model), "kde-dualtree");
}

Result<std::shared_ptr<const density::DensityEstimator>> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("no model registered under '" + name + "'");
  }
  return it->second.model;
}

Status ModelRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_.erase(name) == 0) {
    return Status::NotFound("no model registered under '" + name + "'");
  }
  return Status::Ok();
}

std::vector<ModelEntry> ModelRegistry::List() const {
  std::vector<ModelEntry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) entries.push_back(slot.entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const ModelEntry& a, const ModelEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

int64_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(slots_.size());
}

}  // namespace dbs::serve
