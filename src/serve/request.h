// Typed requests and responses of the model-serving subsystem.
//
// The paper's economics are "fit once, serve many": one expensive estimation
// pass produces a tiny model that then answers density, sampling and outlier
// questions for as long as anyone cares. These structs are the vocabulary of
// that service. Every request names a registered model; the points it
// operates on travel WITH the request, so the server process never touches
// the raw dataset — it holds only the succinct estimators.
//
// The same structs are used by the in-process ModelService, the wire codec
// (serve/wire.h) and the TCP daemon, which is what makes the end-to-end
// guarantee checkable: a request answered over the socket is bitwise
// identical to the same request answered by a direct library call.

#ifndef DBS_SERVE_REQUEST_H_
#define DBS_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/distance.h"
#include "data/point_set.h"
#include "density/bandwidth.h"
#include "density/kernel.h"
#include "outlier/ball_integration.h"

namespace dbs::serve {

// Request kinds, also used as the stats-bucket keys. Values are stable wire
// identifiers — append only.
enum class RequestType : uint32_t {
  kRegister = 1,
  kEvict = 2,
  kDensityBatch = 3,
  kSample = 4,
  kOutlierScoreBatch = 5,
  kStats = 6,
  kShutdown = 7,
  kPartialFit = 8,
};

// Returns a short stable name for a request type ("density", "sample", ...).
const char* RequestTypeName(RequestType type);

// Registers (or hot-swaps) the model stored in a .dbsk file under `name`.
// The daemon runs on the loopback interface, so the path is resolved on the
// server's filesystem — the client ships a pointer, not megabytes.
struct RegisterRequest {
  std::string name;
  std::string path;
};

struct EvictRequest {
  std::string name;
};

// Evaluate the named model's density at each query point.
struct DensityBatchRequest {
  std::string model;
  data::PointSet points;
};

struct DensityBatchResponse {
  // Parallel to the request points.
  std::vector<double> densities;
};

// Draw a density-biased sample of the attached points under the named model
// (the paper's Fig-1 two-pass rule: the exact normalizer k_a is computed
// over the attached points, then each is kept with min(1, (b/k_a) f^a)).
struct SampleRequest {
  std::string model;
  // Density exponent `a` (see core/biased_sampler.h for the regimes).
  double a = 1.0;
  // Expected sample size b.
  int64_t target_size = 1000;
  // Density floor as a fraction of the model's average density.
  double density_floor_fraction = 1e-3;
  uint64_t seed = 1;
  data::PointSet points;
};

struct SampleResponse {
  data::PointSet points;
  std::vector<double> inclusion_probs;
  std::vector<double> densities;
  double normalizer = 0.0;
  int64_t clamped_count = 0;
};

// Score each attached point with N'(O, k) — the expected number of OTHER
// points within `radius`, the integral of the model over Ball(O, radius)
// (paper §3.2). A point is flagged a likely DB(p, k)-outlier when its score
// is <= max_neighbors + 1, the un-slacked bound EstimateOutlierCount uses.
struct OutlierScoreBatchRequest {
  std::string model;
  double radius = 0.1;
  data::Metric metric = data::Metric::kL2;
  int64_t max_neighbors = 10;
  outlier::BallIntegration integration = outlier::BallIntegration::kCenterValue;
  int qmc_samples = 64;
  data::PointSet points;
};

struct OutlierScoreBatchResponse {
  // Expected neighbor count per request point.
  std::vector<double> expected_neighbors;
  // 1 when the point is a likely outlier under the request's bound.
  std::vector<uint8_t> likely_outlier;
};

// Fit one shard of a sharded KDE build (DESIGN.md §12): scan rows
// [ShardRowRange(...).begin, .end) of the .dbsf dataset at `path` — a path
// on the SERVER's filesystem, like RegisterRequest — and return the
// mergeable partial state. A coordinator (tools/dbs_merge) fans one request
// per shard out across daemons, tree-reduces the responses and finalizes
// the model; the options here must be identical across every shard of one
// build, and mirror density::KdeOptions field for field.
struct PartialFitRequest {
  std::string path;
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t num_kernels = 1000;
  density::KernelType kernel = density::KernelType::kEpanechnikov;
  density::BandwidthRule bandwidth_rule = density::BandwidthRule::kScott;
  double fixed_bandwidth = 0.0;
  double bandwidth_scale = 1.0;
  uint64_t seed = 1;
};

// Latency/throughput counters for one request type.
struct RequestStats {
  RequestType type = RequestType::kStats;
  uint64_t count = 0;
  uint64_t errors = 0;
  // Total points carried by the requests of this type.
  uint64_t points = 0;
  // Service-side latency, microseconds.
  double latency_sum_us = 0.0;
  double latency_min_us = 0.0;
  double latency_max_us = 0.0;
  // Percentiles over a sliding window of recent requests.
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
};

struct StatsResponse {
  // One entry per request type that has been seen at least once.
  std::vector<RequestStats> per_type;
  // Names of the currently registered models.
  std::vector<std::string> models;
};

inline const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kRegister:
      return "register";
    case RequestType::kEvict:
      return "evict";
    case RequestType::kDensityBatch:
      return "density";
    case RequestType::kSample:
      return "sample";
    case RequestType::kOutlierScoreBatch:
      return "outlier_scores";
    case RequestType::kStats:
      return "stats";
    case RequestType::kShutdown:
      return "shutdown";
    case RequestType::kPartialFit:
      return "partial_fit";
  }
  return "unknown";
}

}  // namespace dbs::serve

#endif  // DBS_SERVE_REQUEST_H_
