// Compatibility forwarder: the executor moved to parallel/batch_executor.h
// so the density and sampling layers can shard work without depending on
// the serving stack. Serve-side code (daemon, tests, benches) keeps using
// the serve::BatchExecutor name via these aliases.

#ifndef DBS_SERVE_BATCH_EXECUTOR_H_
#define DBS_SERVE_BATCH_EXECUTOR_H_

#include "parallel/batch_executor.h"

namespace dbs::serve {

using BatchExecutor = parallel::BatchExecutor;
using BatchExecutorOptions = parallel::BatchExecutorOptions;

}  // namespace dbs::serve

#endif  // DBS_SERVE_BATCH_EXECUTOR_H_
