// Length-prefixed binary wire protocol for the serving daemon.
//
// Framing mirrors the on-disk formats (.dbsf/.dbsk): a fixed header — magic
// "DBSQ", version, message type, payload length — followed by the payload.
// Payloads are flat little-ceremony sequences of fixed-width integers,
// doubles and length-prefixed strings; point batches are (dim, count,
// count*dim float64). The daemon is loopback-only, so native (little-endian
// on every supported target) byte order is used on both ends.
//
// Decoding follows the same defensive rules as the file loaders
// (io_robustness_test pattern): validate magic/version/type, bound every
// length field BEFORE allocating from it, and cross-check the declared
// payload size against the bytes actually present. Corrupt input surfaces
// as an error Status — never a crash, never an unbounded allocation.

#ifndef DBS_SERVE_WIRE_H_
#define DBS_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "density/kde_partial.h"
#include "serve/request.h"
#include "util/status.h"

namespace dbs::serve {

inline constexpr uint32_t kWireMagic = 0x51534244;  // "DBSQ" little-endian
inline constexpr uint32_t kWireVersion = 1;

// Hard ceiling on a frame payload (guards allocations on garbage lengths):
// 1 GiB is ~16M points at 8 dims.
inline constexpr uint64_t kMaxPayloadBytes = 1ull << 30;
// Ceilings for the inner length fields.
inline constexpr uint64_t kMaxWireString = 4096;
inline constexpr uint32_t kMaxWireDim = 1024;
// Ceiling on the shard count of a serialized partial-build state.
inline constexpr uint32_t kMaxWireShards = 65536;
// POSIX shm region names ("/dbsq-...") are capped well below NAME_MAX.
inline constexpr uint64_t kMaxShmName = 128;
// Bounds on the per-direction shm ring capacity a client may request.
inline constexpr uint64_t kMinShmRingBytes = 1ull << 12;
inline constexpr uint64_t kMaxShmRingBytes = 1ull << 30;

// Wire message identifiers. Requests reuse RequestType values; responses
// live in a disjoint range. Append only.
enum class MessageType : uint32_t {
  kRegisterRequest = 1,
  kEvictRequest = 2,
  kDensityRequest = 3,
  kSampleRequest = 4,
  kOutlierRequest = 5,
  kStatsRequest = 6,
  kShutdownRequest = 7,
  kPartialFitRequest = 8,
  kShmAttachRequest = 9,
  kErrorResponse = 100,
  kOkResponse = 101,
  kDensityResponse = 102,
  kSampleResponse = 103,
  kOutlierResponse = 104,
  kStatsResponse = 105,
  kPartialFitResponse = 106,
};

struct Frame {
  MessageType type = MessageType::kErrorResponse;
  std::vector<uint8_t> payload;
};

// ---- Payload building -----------------------------------------------------

// Appends fixed-width primitives to a byte buffer.
class WireWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  // Length-prefixed (u32) byte string.
  void PutString(const std::string& s);
  // Length-prefixed (u64 count) array of doubles.
  void PutDoubles(const std::vector<double>& values);
  // dim (u32) + count (u64) + row-major coordinates.
  void PutPoints(const data::PointSet& points);

  // Pre-size the buffer when the encoded length is known up front, so a
  // fixed Put sequence appends into one allocation instead of growing
  // through several.
  void Reserve(size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Sequential reader over a payload. Every Get* returns false once the
// payload is exhausted or a length field exceeds its ceiling; callers
// check once at the end via ok()/AtEnd().
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetString(std::string* s);
  bool GetDoubles(std::vector<double>* values);
  bool GetPoints(data::PointSet* points);

  bool ok() const { return ok_; }
  // True when every payload byte was consumed (trailing garbage rejected).
  bool AtEnd() const { return ok_ && cursor_ == size_; }

 private:
  bool Take(size_t n, const uint8_t** out);

  const uint8_t* data_;
  size_t size_;
  size_t cursor_ = 0;
  bool ok_ = true;
};

// ---- Message codecs -------------------------------------------------------

std::vector<uint8_t> EncodeRegisterRequest(const RegisterRequest& request);
[[nodiscard]] Result<RegisterRequest> DecodeRegisterRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeEvictRequest(const EvictRequest& request);
[[nodiscard]] Result<EvictRequest> DecodeEvictRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeDensityRequest(const DensityBatchRequest& request);
[[nodiscard]] Result<DensityBatchRequest> DecodeDensityRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeDensityResponse(
    const DensityBatchResponse& response);
[[nodiscard]] Result<DensityBatchResponse> DecodeDensityResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSampleRequest(const SampleRequest& request);
[[nodiscard]] Result<SampleRequest> DecodeSampleRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSampleResponse(const SampleResponse& response);
[[nodiscard]] Result<SampleResponse> DecodeSampleResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeOutlierRequest(
    const OutlierScoreBatchRequest& request);
[[nodiscard]] Result<OutlierScoreBatchRequest> DecodeOutlierRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeOutlierResponse(
    const OutlierScoreBatchResponse& response);
[[nodiscard]] Result<OutlierScoreBatchResponse> DecodeOutlierResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& response);
[[nodiscard]] Result<StatsResponse> DecodeStatsResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePartialFitRequest(
    const PartialFitRequest& request);
[[nodiscard]] Result<PartialFitRequest> DecodePartialFitRequest(
    const std::vector<uint8_t>& payload);

// Shared-memory transport handshake (DESIGN.md §13): the client created a
// region named `name` holding a request/response ring pair of `ring_bytes`
// each, and asks the daemon to map it and start draining. Pure transport
// plumbing — the service layer never sees it — so the struct lives here
// with the codec rather than in request.h. The daemon answers kOkResponse
// once the region is mapped, or kErrorResponse (kNotFound when the region
// is absent) to make the client fall back to TCP.
struct ShmAttachRequest {
  std::string name;
  uint64_t ring_bytes = 0;
};

std::vector<uint8_t> EncodeShmAttachRequest(const ShmAttachRequest& request);
[[nodiscard]] Result<ShmAttachRequest> DecodeShmAttachRequest(
    const std::vector<uint8_t>& payload);

// Serialized mergeable KDE state (the kPartialFitResponse payload): per
// shard part, its identity, the reservoir of kernel centers, bounds and the
// per-dimension Welford moments as raw (count, mean, m2, min, max) — so a
// decoded state finalizes bitwise identically to the in-process one
// (OnlineMoments::FromParts). Decoding enforces the canonical form merges
// produce: strictly ascending shard indices, one consistent dimensionality.
std::vector<uint8_t> EncodePartialKde(const density::PartialKde& partial);
[[nodiscard]] Result<density::PartialKde> DecodePartialKde(
    const std::vector<uint8_t>& payload);

// Error responses carry (code, message); decoding returns the Status they
// describe.
std::vector<uint8_t> EncodeErrorResponse(const Status& status);
[[nodiscard]] Status DecodeErrorResponse(const std::vector<uint8_t>& payload);

// ---- Framing --------------------------------------------------------------

// Serializes a full frame (header + payload) into one buffer.
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);

// Parses a frame from `data`. On success stores the frame and the total
// bytes consumed. Fails on bad magic/version/type, oversized payloads and
// short buffers (kIoError for "need more bytes", kInvalidArgument for
// structurally bad headers).
[[nodiscard]] Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t* consumed);

// Blocking frame I/O over a file descriptor (socket). WriteFrame writes the
// whole frame; ReadFrame reads exactly one frame. ReadFrame returns
// kIoError with message "connection closed" on clean EOF before any header
// byte.
[[nodiscard]] Status WriteFrame(int fd, MessageType type,
                  const std::vector<uint8_t>& payload);
[[nodiscard]] Result<Frame> ReadFrame(int fd);

}  // namespace dbs::serve

#endif  // DBS_SERVE_WIRE_H_
