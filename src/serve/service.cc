#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/biased_sampler.h"
#include "data/dataset_io.h"
#include "data/range_scan.h"
#include "outlier/ball_integration.h"
#include "util/shard.h"
#include "util/stats.h"

namespace dbs::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

[[nodiscard]] Status ValidatePoints(const data::PointSet& points, int model_dim,
                      const std::string& model) {
  if (points.dim() != model_dim) {
    return Status::InvalidArgument(
        "request dimensionality does not match model '" + model + "'");
  }
  return Status::Ok();
}

}  // namespace

ModelService::ModelService(ModelRegistry* registry, BatchExecutor* executor)
    : registry_(registry), executor_(executor) {
  DBS_CHECK(registry_ != nullptr);
  DBS_CHECK(executor_ != nullptr);
}

Status ModelService::Register(const RegisterRequest& request) {
  Clock::time_point start = Clock::now();
  Status status = registry_->LoadKdeFile(request.name, request.path);
  Record(RequestType::kRegister, status.ok(), 0, ElapsedUs(start));
  return status;
}

Status ModelService::Evict(const EvictRequest& request) {
  Clock::time_point start = Clock::now();
  Status status = registry_->Evict(request.name);
  Record(RequestType::kEvict, status.ok(), 0, ElapsedUs(start));
  return status;
}

Result<DensityBatchResponse> ModelService::Density(
    const DensityBatchRequest& request) {
  Clock::time_point start = Clock::now();
  const int64_t total = request.points.size();
  auto fail = [&](Status status) -> Result<DensityBatchResponse> {
    Record(RequestType::kDensityBatch, false, total, ElapsedUs(start));
    return status;
  };

  auto model = registry_->Get(request.model);
  if (!model.ok()) return fail(model.status());
  if (total == 0) {
    Record(RequestType::kDensityBatch, true, 0, ElapsedUs(start));
    return DensityBatchResponse{};
  }
  Status valid = ValidatePoints(request.points, (*model)->dim(),
                                request.model);
  if (!valid.ok()) return fail(valid);

  DensityBatchResponse response;
  response.densities.resize(static_cast<size_t>(total));
  const density::DensityEstimator& estimator = **model;
  // The estimator's batch path shards across the executor itself (and the
  // KDE override amortizes neighbor gathering per grid cell); results are
  // bitwise identical to per-point Evaluate.
  Status run = estimator.EvaluateBatch(request.points.flat().data(), total,
                                       response.densities.data(), executor_);
  if (!run.ok()) return fail(run);
  Record(RequestType::kDensityBatch, true, total, ElapsedUs(start));
  return response;
}

Result<SampleResponse> ModelService::Sample(const SampleRequest& request) {
  Clock::time_point start = Clock::now();
  const int64_t total = request.points.size();
  auto fail = [&](Status status) -> Result<SampleResponse> {
    Record(RequestType::kSample, false, total, ElapsedUs(start));
    return status;
  };

  auto model = registry_->Get(request.model);
  if (!model.ok()) return fail(model.status());
  Status valid =
      ValidatePoints(request.points, (*model)->dim(), request.model);
  if (!valid.ok()) return fail(valid);
  if (request.target_size <= 0) {
    return fail(Status::InvalidArgument("target_size must be positive"));
  }

  core::BiasedSamplerOptions options;
  options.a = request.a;
  options.target_size = request.target_size;
  options.density_floor_fraction = request.density_floor_fraction;
  options.seed = request.seed;

  // The sampling pass consumes a sequential RNG stream, so it cannot be
  // sharded; it runs as one admission-controlled task. ParallelFor with a
  // single index is exactly that.
  Result<core::BiasedSample> sample =
      Status::Internal("sampling task did not run");
  const density::DensityEstimator& estimator = **model;
  Status run = executor_->ParallelFor(1, [&](int64_t, int64_t) {
    sample = core::BiasedSampler(options).Run(request.points, estimator);
  });
  if (!run.ok()) return fail(run);
  if (!sample.ok()) return fail(sample.status());

  SampleResponse response;
  response.points = std::move(sample->points);
  response.inclusion_probs = std::move(sample->inclusion_probs);
  response.densities = std::move(sample->densities);
  response.normalizer = sample->normalizer;
  response.clamped_count = sample->clamped_count;
  Record(RequestType::kSample, true, total, ElapsedUs(start));
  return response;
}

Result<OutlierScoreBatchResponse> ModelService::OutlierScores(
    const OutlierScoreBatchRequest& request) {
  Clock::time_point start = Clock::now();
  const int64_t total = request.points.size();
  auto fail = [&](Status status) -> Result<OutlierScoreBatchResponse> {
    Record(RequestType::kOutlierScoreBatch, false, total, ElapsedUs(start));
    return status;
  };

  auto model = registry_->Get(request.model);
  if (!model.ok()) return fail(model.status());
  if (total == 0) {
    Record(RequestType::kOutlierScoreBatch, true, 0, ElapsedUs(start));
    return OutlierScoreBatchResponse{};
  }
  Status valid =
      ValidatePoints(request.points, (*model)->dim(), request.model);
  if (!valid.ok()) return fail(valid);
  if (request.radius < 0) {
    return fail(Status::InvalidArgument("radius cannot be negative"));
  }
  if (request.qmc_samples <= 0) {
    return fail(Status::InvalidArgument("qmc_samples must be positive"));
  }
  if (request.max_neighbors < 0) {
    return fail(Status::InvalidArgument("max_neighbors cannot be negative"));
  }

  const outlier::BallIntegrator integrator(
      request.integration, request.points.dim(), request.qmc_samples,
      request.metric);
  // The un-slacked candidate bound (see outlier::EstimateOutlierCount).
  const double threshold = static_cast<double>(request.max_neighbors + 1);

  OutlierScoreBatchResponse response;
  response.expected_neighbors.resize(static_cast<size_t>(total));
  response.likely_outlier.resize(static_cast<size_t>(total));
  const density::DensityEstimator& estimator = **model;
  double* scores = response.expected_neighbors.data();
  uint8_t* flags = response.likely_outlier.data();
  // Batched leave-one-out scoring, sharded by the integrator across the
  // executor; bitwise identical to the per-point calls. Covers BOTH
  // integration methods: center-value through the estimator's batched
  // leave-one-out path, quasi-Monte-Carlo through the probe-tile expansion
  // (each point fans out into its qmc_samples probes and the whole tile is
  // evaluated batched — see BallIntegrator::IntegrateExcludingSelfBatch).
  Status run = integrator.IntegrateExcludingSelfBatch(
      estimator, request.points.flat().data(), total, request.radius, scores,
      executor_);
  if (!run.ok()) return fail(run);
  for (int64_t i = 0; i < total; ++i) {
    flags[i] = scores[i] <= threshold ? 1 : 0;
  }
  Record(RequestType::kOutlierScoreBatch, true, total, ElapsedUs(start));
  return response;
}

Result<density::PartialKde> ModelService::PartialFit(
    const PartialFitRequest& request) {
  Clock::time_point start = Clock::now();
  int64_t rows = 0;
  auto fail = [&](Status status) -> Result<density::PartialKde> {
    Record(RequestType::kPartialFit, false, rows, ElapsedUs(start));
    return status;
  };

  ShardInfo info;
  info.shard = request.shard;
  info.num_shards = request.num_shards;
  Status valid = ValidateShardInfo(info);
  if (!valid.ok()) return fail(valid);

  density::KdeOptions options;
  options.num_kernels = request.num_kernels;
  options.kernel = request.kernel;
  options.bandwidth_rule = request.bandwidth_rule;
  options.fixed_bandwidth = request.fixed_bandwidth;
  options.bandwidth_scale = request.bandwidth_scale;
  options.seed = request.seed;

  auto scan = data::FileScan::Open(request.path, 8192,
                                   /*double_buffered=*/true);
  if (!scan.ok()) return fail(scan.status());
  info.total_rows = (*scan)->size();
  const RowRange range =
      ShardRowRange(info.total_rows, info.num_shards, info.shard);
  rows = range.size();

  // Like Sample: the reservoir pass is one sequential RNG sweep, submitted
  // as a single admission-controlled task.
  Result<density::PartialKde> partial =
      Status::Internal("partial-fit task did not run");
  Status run = executor_->ParallelFor(1, [&](int64_t, int64_t) {
    data::RangeScan slice(scan->get(), range.begin, range.end);
    partial = density::Kde::FitPartial(slice, options, info);
  });
  if (!run.ok()) return fail(run);
  if (!partial.ok()) return fail(partial.status());
  Record(RequestType::kPartialFit, true, rows, ElapsedUs(start));
  return partial;
}

StatsResponse ModelService::Stats() const {
  StatsResponse response;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const auto& [type, stats] : stats_) {
      RequestStats row;
      row.type = type;
      row.count = stats.count;
      row.errors = stats.errors;
      row.points = stats.points;
      row.latency_sum_us = stats.latency_sum_us;
      row.latency_min_us = stats.latency_min_us;
      row.latency_max_us = stats.latency_max_us;
      if (!stats.recent.empty()) {
        row.latency_p50_us = Percentile(stats.recent, 0.5);
        row.latency_p99_us = Percentile(stats.recent, 0.99);
      }
      response.per_type.push_back(row);
    }
  }
  for (const ModelEntry& entry : registry_->List()) {
    response.models.push_back(entry.name);
  }
  return response;
}

void ModelService::Record(RequestType type, bool ok, int64_t num_points,
                          double latency_us) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TypeStats& stats = stats_[type];
  if (stats.count == 0) {
    stats.latency_min_us = latency_us;
    stats.latency_max_us = latency_us;
  } else {
    stats.latency_min_us = std::min(stats.latency_min_us, latency_us);
    stats.latency_max_us = std::max(stats.latency_max_us, latency_us);
  }
  ++stats.count;
  if (!ok) ++stats.errors;
  stats.points += static_cast<uint64_t>(std::max<int64_t>(num_points, 0));
  stats.latency_sum_us += latency_us;
  if (static_cast<int>(stats.recent.size()) < kLatencyWindow) {
    stats.recent.push_back(latency_us);
  } else {
    stats.recent[static_cast<size_t>(stats.next_slot)] = latency_us;
    stats.next_slot = (stats.next_slot + 1) % kLatencyWindow;
  }
}

}  // namespace dbs::serve
