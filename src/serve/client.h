// Blocking client for the serve wire protocol.
//
// One Client wraps one daemon session and issues synchronous
// request/response exchanges; concurrency comes from opening one client
// per thread (each session is an independent request stream). Used by
// the dbs_query tool, the examples and the end-to-end tests.
//
// Two transports carry the same frames (DESIGN.md §13): plain TCP, and a
// shared-memory ring pair for colocated clients. Connect with
// ClientOptions{.transport = TransportKind::kShm} to attempt the shm
// upgrade; by default the client falls back to plain TCP when the daemon
// declines (shm disabled, remote host) and records why in shm_status().
// Responses are bitwise identical either way — the daemon runs both
// transports through one dispatch path and one codec.
//
// For throughput-sensitive callers, Submit/ReadResponseFrame expose the
// raw frame stream so several requests can be in flight on the one session
// (see DensityPipelined); responses always arrive in submission order.

#ifndef DBS_SERVE_CLIENT_H_
#define DBS_SERVE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/shm_transport.h"
#include "serve/wire.h"
#include "util/status.h"

namespace dbs::serve {

enum class TransportKind {
  kTcp,
  kShm,
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  // Requested transport. kShm attaches a shared-memory ring pair over the
  // TCP control connection; the daemon must be colocated.
  TransportKind transport = TransportKind::kTcp;
  // Per-direction ring data capacity for kShm (power of two within
  // [kMinShmRingBytes, kMaxShmRingBytes]). Bounds the largest frame the
  // session can carry: requests and responses must fit in one ring.
  size_t shm_ring_bytes = 1ull << 20;
  // When the shm attach fails (daemon declined, not colocated), continue
  // over plain TCP instead of failing Connect; shm_status() records the
  // reason. Set false to require shm.
  bool shm_fallback_to_tcp = true;
};

class Client {
 public:
  // Connects to the daemon (loopback by default).
  [[nodiscard]] static Result<Client> Connect(uint16_t port,
                                const std::string& host = "127.0.0.1");
  [[nodiscard]] static Result<Client> Connect(uint16_t port, const ClientOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // The transport actually in use (kTcp after a fallback).
  TransportKind transport() const { return transport_; }
  // Why the shm attach fell back to TCP; Ok when shm is active or was
  // never requested.
  const Status& shm_status() const { return shm_status_; }

  // Registers the .dbsk model at `path` (a server-side path) under `name`.
  [[nodiscard]] Status RegisterModel(const std::string& name, const std::string& path);

  [[nodiscard]] Status EvictModel(const std::string& name);

  [[nodiscard]] Result<DensityBatchResponse> Density(const DensityBatchRequest& request);

  // Density over several batches with up to `window` requests in flight on
  // this one session — amortizes the per-exchange transport latency without
  // extra connections. Responses are returned in request order and are
  // identical to issuing the batches one Density call at a time.
  [[nodiscard]] Result<std::vector<DensityBatchResponse>> DensityPipelined(
      const std::vector<DensityBatchRequest>& requests, int window);

  [[nodiscard]] Result<SampleResponse> Sample(const SampleRequest& request);

  [[nodiscard]] Result<OutlierScoreBatchResponse> OutlierScores(
      const OutlierScoreBatchRequest& request);

  // Fits one shard of a distributed KDE build on the server (the dataset
  // path is server-side) and returns the mergeable partial state. See
  // tools/dbs_merge for the collector that reduces the shards.
  [[nodiscard]] Result<density::PartialKde> PartialFit(const PartialFitRequest& request);

  [[nodiscard]] Result<StatsResponse> Stats();

  // Asks the daemon to shut down; the connection closes afterwards.
  [[nodiscard]] Status RequestShutdown();

  // ---- Raw frame stream (pipelining building blocks) ----------------------

  // Sends one request frame without waiting for its response. Each Submit
  // owes exactly one ReadResponseFrame; responses arrive in Submit order.
  [[nodiscard]] Status Submit(MessageType type, const std::vector<uint8_t>& payload);

  // Reads the next response frame verbatim — kErrorResponse frames are
  // returned, not translated, so pipelined callers see per-request errors
  // in sequence.
  [[nodiscard]] Result<Frame> ReadResponseFrame();

 private:
  explicit Client(int fd) : fd_(fd) {}

  // Attempts the shm upgrade on the freshly connected control socket.
  [[nodiscard]] Status AttachShm(size_t ring_bytes);
  // True when the daemon closed the control connection (shm liveness probe).
  bool ServerClosed() const;

  // Writes one request frame and reads the single response frame,
  // translating kErrorResponse frames into their Status.
  [[nodiscard]] Result<Frame> RoundTrip(MessageType type,
                          const std::vector<uint8_t>& payload,
                          MessageType expected_response);

  int fd_ = -1;
  TransportKind transport_ = TransportKind::kTcp;
  Status shm_status_ = Status::Ok();
  std::unique_ptr<ShmSession> shm_;
  // Responses popped while waiting for request-ring space (a full request
  // ring under pipelining is relieved by consuming responses, never by
  // spinning — see Submit).
  std::deque<Frame> pending_;
  std::vector<uint8_t> scratch_;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_CLIENT_H_
