// Blocking client for the serve wire protocol.
//
// One Client wraps one TCP connection and issues synchronous
// request/response exchanges; concurrency comes from opening one client
// per thread (each connection is an independent request stream). Used by
// the dbs_query tool, the examples and the end-to-end tests.

#ifndef DBS_SERVE_CLIENT_H_
#define DBS_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/request.h"
#include "serve/wire.h"
#include "util/status.h"

namespace dbs::serve {

class Client {
 public:
  // Connects to the daemon (loopback by default).
  static Result<Client> Connect(uint16_t port,
                                const std::string& host = "127.0.0.1");

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Registers the .dbsk model at `path` (a server-side path) under `name`.
  Status RegisterModel(const std::string& name, const std::string& path);

  Status EvictModel(const std::string& name);

  Result<DensityBatchResponse> Density(const DensityBatchRequest& request);

  Result<SampleResponse> Sample(const SampleRequest& request);

  Result<OutlierScoreBatchResponse> OutlierScores(
      const OutlierScoreBatchRequest& request);

  // Fits one shard of a distributed KDE build on the server (the dataset
  // path is server-side) and returns the mergeable partial state. See
  // tools/dbs_merge for the collector that reduces the shards.
  Result<density::PartialKde> PartialFit(const PartialFitRequest& request);

  Result<StatsResponse> Stats();

  // Asks the daemon to shut down; the connection closes afterwards.
  Status RequestShutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  // Writes one request frame and reads the single response frame,
  // translating kErrorResponse frames into their Status.
  Result<Frame> RoundTrip(MessageType type,
                          const std::vector<uint8_t>& payload,
                          MessageType expected_response);

  int fd_ = -1;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_CLIENT_H_
