// Shared-memory serve transport: region layout, session mapping and the
// server-side drain thread (DESIGN.md §13).
//
// A colocated client creates a POSIX shared-memory region holding a pair of
// lock-free SPSC rings — request (client produces, daemon consumes) and
// response (daemon produces, client consumes) — and hands its name to the
// daemon over the ordinary TCP connection (kShmAttachRequest). From then on
// every DBSQ frame for that client travels through the rings: no socket
// copies, no syscall per request. The TCP connection stays open purely as
// the session's lifetime anchor — when it closes, the daemon detaches the
// region. The client unlinks the region name right after the handshake, so
// the kernel reclaims the pages as soon as both sides unmap, crash
// included.
//
// Region layout (all offsets 64-byte aligned):
//   [ShmRegionHeader 64B][request ring: control+data][response ring: ...]
//
// The frames in the rings are the exact bytes EncodeFrame produces for TCP
// — the codec is transport-agnostic — which is what makes shm responses
// bitwise identical to TCP responses for the same request stream.

#ifndef DBS_SERVE_SHM_TRANSPORT_H_
#define DBS_SERVE_SHM_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/shm_ring.h"
#include "serve/wire.h"
#include "util/status.h"

namespace dbs::serve {

class ModelService;

inline constexpr uint32_t kShmRegionMagic = 0x4d534244;  // "DBSM"
inline constexpr uint32_t kShmRegionVersion = 1;

struct ShmRegionHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  // Per-direction ring data capacity (power of two).
  uint64_t ring_bytes = 0;
  uint8_t reserved[48] = {};
};
static_assert(sizeof(ShmRegionHeader) == 64);

// Total region size for a given per-direction ring capacity.
constexpr size_t ShmRegionBytes(size_t ring_bytes) {
  return sizeof(ShmRegionHeader) + 2 * ShmRing::RegionBytes(ring_bytes);
}

// One mapped region: the two rings plus the fd/mapping that back them.
// Created (and initialized) by the client; opened read-write by the server
// after the attach handshake names it. Both sides address the same pages
// through their own mapping.
class ShmSession {
 public:
  // Client side: creates and formats a fresh region under `name` (a POSIX
  // shm name, "/..."). Fails if the name exists.
  [[nodiscard]] static Result<std::unique_ptr<ShmSession>> Create(const std::string& name,
                                                    size_t ring_bytes);

  // Server side: maps an existing region and validates its header — size,
  // magic, version, power-of-two capacity. A missing region surfaces as
  // kNotFound, which is what the client's TCP fallback keys on.
  [[nodiscard]] static Result<std::unique_ptr<ShmSession>> Open(const std::string& name);

  ~ShmSession();
  ShmSession(const ShmSession&) = delete;
  ShmSession& operator=(const ShmSession&) = delete;

  // Removes the region's name from the filesystem namespace; existing
  // mappings (both sides) live on. Idempotent.
  void Unlink();

  ShmRing& request_ring() { return request_ring_; }
  ShmRing& response_ring() { return response_ring_; }
  size_t ring_bytes() const { return ring_bytes_; }
  const std::string& name() const { return name_; }

 private:
  ShmSession() = default;

  std::string name_;
  bool unlinked_ = true;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  size_t ring_bytes_ = 0;
  ShmRing request_ring_;
  ShmRing response_ring_;
};

// Escalating wait for the polling loops on both sides of a ring: yield
// first (on a colocated core that is usually enough to schedule the peer),
// then sleep in growing steps capped well below a scheduler quantum so a
// long-idle ring costs near-zero CPU without wrecking first-request
// latency. Step() returns true once the backoff has entered the sleeping
// phase — callers use that as "cheap moment to check peer liveness".
class ShmBackoff {
 public:
  void Reset() { idle_ = 0; }
  bool Step() {
    ++idle_;
    if (idle_ <= kYieldSteps) {
      std::this_thread::yield();
      return false;
    }
    const int64_t exponent = idle_ - kYieldSteps;
    const int64_t us = exponent < 5 ? (10 << exponent) : 320;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return true;
  }

 private:
  static constexpr int64_t kYieldSteps = 256;
  int64_t idle_ = 0;
};

// The daemon's drain thread: sweeps every attached session, pops batches of
// ready request frames from the request rings, executes them in arrival
// order through the shared ModelService (the same dispatch path TCP uses)
// and pushes the response frames back. One thread serves all sessions; the
// BatchExecutor behind the service is where the actual work parallelizes,
// exactly as with TCP connections.
class ShmServerDrain {
 public:
  struct Options {
    // Frames popped per session per sweep: bounds how long one busy session
    // can monopolize the drain before its neighbors get a turn.
    int drain_batch = 32;
    // How long a full response ring may stall the drain before the session
    // is declared dead (its client has stopped consuming).
    std::chrono::milliseconds push_deadline{5000};
  };

  // `service` is not owned and must outlive the drain. `on_shutdown` runs
  // when a session delivers a shutdown frame (the daemon's WaitForShutdown
  // hook); it must be callable from the drain thread.
  ShmServerDrain(ModelService* service, std::function<void()> on_shutdown,
                 const Options& options);
  ~ShmServerDrain();

  ShmServerDrain(const ShmServerDrain&) = delete;
  ShmServerDrain& operator=(const ShmServerDrain&) = delete;

  // Starts draining `session`; `id` keys the later Detach (the server uses
  // the control-connection fd).
  void Attach(int id, std::unique_ptr<ShmSession> session);

  // Stops draining the session keyed by `id` and releases its mapping (at
  // the drain thread's next sweep boundary). Safe for unknown ids.
  void Detach(int id);

  // Stops and joins the drain thread, releasing every session. Idempotent;
  // the destructor runs it.
  void Stop();

 private:
  struct Entry {
    int id = 0;
    std::unique_ptr<ShmSession> session;
    // Flipped by Detach (connection thread) and by the drain thread itself
    // on framing violations; the drain erases marked entries at its next
    // sweep boundary. Atomic because the drain reads it between frames
    // without taking the registry lock.
    std::atomic<bool> dead{false};
  };

  void Loop();
  // Drains one batch from one session; returns true if any frame moved.
  bool DrainOne(Entry* entry);
  // Pushes one response frame, waiting out backpressure up to the deadline.
  bool PushResponse(Entry* entry, const Frame& response);

  ModelService* service_;
  std::function<void()> on_shutdown_;
  Options options_;

  // Guards entries_ and stop_. Taken only by Attach/Detach and the drain
  // sweep's session-list snapshot; never held while touching a ring, so
  // ring operations stay lock-free. Leaf lock.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Entry>> entries_;
  bool stop_ = false;
  std::atomic<bool> stop_flag_{false};
  std::vector<uint8_t> scratch_;
  std::thread thread_;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_SHM_TRANSPORT_H_
