#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/dispatch.h"
#include "serve/wire.h"

namespace dbs::serve {
namespace {

[[nodiscard]] Status SocketError(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(ModelService* service,
                                              const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("server requires a service");
  }
  if (options.shm_drain_batch < 1) {
    return Status::InvalidArgument("shm_drain_batch must be at least 1");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");

  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return SocketError("bind");
  }
  if (::listen(fd, std::max(options.backlog, 1)) != 0) {
    ::close(fd);
    return SocketError("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return SocketError("getsockname");
  }

  std::unique_ptr<Server> server(
      new Server(  // dbs-lint: allow(raw-alloc): private ctor
          service, fd, ntohs(addr.sin_port), options));
  if (options.enable_shm) {
    ShmServerDrain::Options drain_options;
    drain_options.drain_batch = options.shm_drain_batch;
    server->drain_ = std::make_unique<ShmServerDrain>(
        service, [raw = server.get()] { raw->RequestShutdown(); },
        drain_options);
  }
  server->acceptor_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

Server::Server(ModelService* service, int listen_fd, uint16_t port,
               const ServerOptions& options)
    : service_(service),
      listen_fd_(listen_fd),
      port_(port),
      options_(options) {}

Server::~Server() { Stop(); }

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener was shut down (Stop) or broke; either way we are done.
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  for (;;) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) break;  // Peer closed, malformed framing or Stop().
    if (!ServeOne(fd, *frame)) break;
  }
  // Unlink before closing so Stop never touches a recycled descriptor.
  bool attached = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
    auto it = std::find(shm_fds_.begin(), shm_fds_.end(), fd);
    if (it != shm_fds_.end()) {
      shm_fds_.erase(it);
      attached = true;
    }
  }
  // The control connection is the shm session's lifetime anchor: its close
  // releases the mapping.
  if (attached && drain_ != nullptr) drain_->Detach(fd);
  ::close(fd);
}

Status Server::AttachShm(int fd, const Frame& frame) {
  DBS_ASSIGN_OR_RETURN(ShmAttachRequest request,
                       DecodeShmAttachRequest(frame.payload));
  if (drain_ == nullptr) {
    return Status::FailedPrecondition(
        "shm transport disabled on this daemon (transport=tcp)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(shm_fds_.begin(), shm_fds_.end(), fd) != shm_fds_.end()) {
      return Status::FailedPrecondition(
          "connection already has an shm session attached");
    }
  }
  DBS_ASSIGN_OR_RETURN(std::unique_ptr<ShmSession> session,
                       ShmSession::Open(request.name));
  if (session->ring_bytes() != request.ring_bytes) {
    return Status::InvalidArgument(
        "shm region ring capacity disagrees with the attach request");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shm_fds_.push_back(fd);
  }
  drain_->Attach(fd, std::move(session));
  return Status::Ok();
}

bool Server::ServeOne(int fd, const Frame& frame) {
  // The attach handshake is transport plumbing for THIS connection, so it
  // is handled here rather than in the transport-agnostic dispatch. Attach
  // failures keep the connection open: the client falls back to TCP on it.
  if (frame.type == MessageType::kShmAttachRequest) {
    Status status = AttachShm(fd, frame);
    if (!status.ok()) {
      return WriteFrame(fd, MessageType::kErrorResponse,
                        EncodeErrorResponse(status))
          .ok();
    }
    return WriteFrame(fd, MessageType::kOkResponse, {}).ok();
  }

  DispatchResult result = DispatchFrame(service_, frame);
  bool write_ok =
      WriteFrame(fd, result.response.type, result.response.payload).ok();
  if (result.shutdown) RequestShutdown();
  return write_ok && !result.close;
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopping_; });
}

void Server::Stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      // Wake the blocked accept and every blocked connection read.
      ::shutdown(listen_fd_, SHUT_RDWR);
      for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
  }
  shutdown_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(connection_threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  // Connection threads detach their sessions on exit; stopping the drain
  // afterwards releases anything that never detached.
  if (drain_ != nullptr) drain_->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace dbs::serve
