#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/wire.h"

namespace dbs::serve {
namespace {

Status SocketError(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(ModelService* service,
                                              const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("server requires a service");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");

  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return SocketError("bind");
  }
  if (::listen(fd, std::max(options.backlog, 1)) != 0) {
    ::close(fd);
    return SocketError("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return SocketError("getsockname");
  }

  std::unique_ptr<Server> server(
      new Server(  // dbs-lint: allow(raw-alloc): private ctor
          service, fd, ntohs(addr.sin_port)));
  server->acceptor_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

Server::Server(ModelService* service, int listen_fd, uint16_t port)
    : service_(service), listen_fd_(listen_fd), port_(port) {}

Server::~Server() { Stop(); }

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener was shut down (Stop) or broke; either way we are done.
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  for (;;) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) break;  // Peer closed, malformed framing or Stop().
    if (!ServeOne(fd, *frame)) break;
  }
  // Unlink before closing so Stop never touches a recycled descriptor.
  {
    std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

bool Server::ServeOne(int fd, const Frame& frame) {
  // Decode failures close the connection after reporting: a peer that sends
  // a malformed payload cannot be assumed frame-aligned anymore.
  auto reject = [&](const Status& status) {
    (void)WriteFrame(fd, MessageType::kErrorResponse,
                     EncodeErrorResponse(status));
    return false;
  };
  // Service-level errors are normal protocol traffic; keep serving.
  auto answer_error = [&](const Status& status) {
    return WriteFrame(fd, MessageType::kErrorResponse,
                      EncodeErrorResponse(status))
        .ok();
  };

  switch (frame.type) {
    case MessageType::kRegisterRequest: {
      auto request = DecodeRegisterRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      Status status = service_->Register(*request);
      if (!status.ok()) return answer_error(status);
      return WriteFrame(fd, MessageType::kOkResponse, {}).ok();
    }
    case MessageType::kEvictRequest: {
      auto request = DecodeEvictRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      Status status = service_->Evict(*request);
      if (!status.ok()) return answer_error(status);
      return WriteFrame(fd, MessageType::kOkResponse, {}).ok();
    }
    case MessageType::kDensityRequest: {
      auto request = DecodeDensityRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      auto response = service_->Density(*request);
      if (!response.ok()) return answer_error(response.status());
      return WriteFrame(fd, MessageType::kDensityResponse,
                        EncodeDensityResponse(*response))
          .ok();
    }
    case MessageType::kSampleRequest: {
      auto request = DecodeSampleRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      auto response = service_->Sample(*request);
      if (!response.ok()) return answer_error(response.status());
      return WriteFrame(fd, MessageType::kSampleResponse,
                        EncodeSampleResponse(*response))
          .ok();
    }
    case MessageType::kOutlierRequest: {
      auto request = DecodeOutlierRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      auto response = service_->OutlierScores(*request);
      if (!response.ok()) return answer_error(response.status());
      return WriteFrame(fd, MessageType::kOutlierResponse,
                        EncodeOutlierResponse(*response))
          .ok();
    }
    case MessageType::kPartialFitRequest: {
      auto request = DecodePartialFitRequest(frame.payload);
      if (!request.ok()) return reject(request.status());
      auto response = service_->PartialFit(*request);
      if (!response.ok()) return answer_error(response.status());
      return WriteFrame(fd, MessageType::kPartialFitResponse,
                        EncodePartialKde(*response))
          .ok();
    }
    case MessageType::kStatsRequest: {
      StatsResponse response = service_->Stats();
      return WriteFrame(fd, MessageType::kStatsResponse,
                        EncodeStatsResponse(response))
          .ok();
    }
    case MessageType::kShutdownRequest: {
      (void)WriteFrame(fd, MessageType::kOkResponse, {});
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return false;
    }
    default:
      return reject(
          Status::InvalidArgument("response message sent as a request"));
  }
}

void Server::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopping_; });
}

void Server::Stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      // Wake the blocked accept and every blocked connection read.
      ::shutdown(listen_fd_, SHUT_RDWR);
      for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
  }
  shutdown_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(connection_threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace dbs::serve
