// Lock-free single-producer/single-consumer byte ring over a caller-provided
// memory region — the primitive under the shared-memory serve transport
// (DESIGN.md §13).
//
// Layout: one cache-line-padded control block (producer `head`, consumer
// `tail` — free-running byte counters on separate lines so the two sides
// never false-share) followed by a power-of-two data area; positions wrap
// by masking. A record is [u64 length][length bytes] and may wrap across
// the data-area boundary, in which case the copy splits in two.
//
// Memory-ordering contract:
//   producer: acquire-load `tail` -> space check -> plain stores of the
//             record bytes -> release-store `head`.
//   consumer: acquire-load `head` -> plain loads of the record bytes ->
//             release-store `tail`.
// The release/acquire pair on `head` orders the record bytes before the
// consumer can observe the advanced cursor, so a published record is always
// complete; the pair on `tail` returns space to the producer only after the
// bytes were copied out, so the producer never overwrites a record still
// being read. Exactly one thread may push and one may pop; the two sides
// may live in different processes mapping the same region
// (std::atomic<uint64_t> is lock-free and address-free on every supported
// target).
//
// TryPush/TryPop never block and never spin: a full ring fails the push —
// the caller owns the backpressure policy — and an empty ring fails the
// pop. A structurally impossible record (zero length, longer than the data
// area, or extending past the published head) is reported as a corrupt-ring
// Status: a torn or overwritten frame is rejected, never handed out.

#ifndef DBS_SERVE_SHM_RING_H_
#define DBS_SERVE_SHM_RING_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace dbs::serve {

class ShmRing {
 public:
  // Control block: two cache-line-padded cursors at the head of the region.
  static constexpr size_t kControlBytes = 128;
  // Record length prefix.
  static constexpr size_t kLengthBytes = 8;

  static constexpr bool IsPowerOfTwo(uint64_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  }

  // Region bytes required for a ring with `data_bytes` of payload space.
  static constexpr size_t RegionBytes(size_t data_bytes) {
    return kControlBytes + data_bytes;
  }

  ShmRing() = default;

  // Formats `region` (at least RegionBytes(data_bytes) bytes, 8-byte
  // aligned, data_bytes a power of two) as an empty ring. Exactly one side
  // formats; the other views the same region via Attach.
  static ShmRing Create(void* region, size_t data_bytes) {
    ShmRing ring = Attach(region, data_bytes);
    // The creator zeroes the cursors before the region name is ever shared,
    // so the attaching side only sees an initialized control block (the
    // handshake that publishes the region provides the happens-before).
    ring.control_->head.store(0, std::memory_order_relaxed);
    ring.control_->tail.store(0, std::memory_order_relaxed);
    return ring;
  }

  // Views an already-formatted region.
  static ShmRing Attach(void* region, size_t data_bytes) {
    DBS_ASSERT(IsPowerOfTwo(data_bytes), "ring data size must be 2^k");
    DBS_ASSERT(data_bytes > kLengthBytes, "ring too small for any record");
    ShmRing ring;
    ring.control_ = static_cast<Control*>(region);
    ring.data_ = static_cast<uint8_t*>(region) + kControlBytes;
    ring.capacity_ = data_bytes;
    ring.mask_ = data_bytes - 1;
    return ring;
  }

  bool valid() const { return control_ != nullptr; }
  size_t data_bytes() const { return capacity_; }

  // Largest record payload this ring can ever carry (even when empty).
  size_t max_record_bytes() const { return capacity_ - kLengthBytes; }

  // Producer side. Appends one record; returns false when the ring lacks
  // space — immediately, so a full ring surfaces as backpressure the caller
  // can wait out (kUnavailable-equivalent), never as a busy spin in here.
  bool TryPush(const uint8_t* data, size_t size) {
    DBS_ASSERT(size > 0, "empty records are indistinguishable from torn");
    DBS_ASSERT(size <= max_record_bytes(), "record exceeds ring capacity");
    const uint64_t head = control_->head.load(std::memory_order_relaxed);
    const uint64_t tail = control_->tail.load(std::memory_order_acquire);
    const uint64_t need = kLengthBytes + size;
    if (capacity_ - (head - tail) < need) return false;
    const uint64_t length = size;
    CopyIn(head, reinterpret_cast<const uint8_t*>(&length), kLengthBytes);
    CopyIn(head + kLengthBytes, data, size);
    control_->head.store(head + need, std::memory_order_release);
    return true;
  }

  // Consumer side. Pops one record into *out (replacing its contents).
  // Returns true on a record, false when the ring is empty, and an error
  // Status when the published bytes cannot be a record the producer wrote.
  [[nodiscard]] Result<bool> TryPop(std::vector<uint8_t>* out) {
    const uint64_t tail = control_->tail.load(std::memory_order_relaxed);
    const uint64_t head = control_->head.load(std::memory_order_acquire);
    const uint64_t avail = head - tail;
    if (avail == 0) return false;
    // The producer only ever publishes whole records, so anything shorter
    // than its own length prefix — or than the length it declares — is a
    // torn or overwritten frame: reject, never deliver partial bytes.
    if (avail < kLengthBytes) {
      return Status::Internal("corrupt shm ring: truncated record length");
    }
    uint64_t length = 0;
    CopyOut(tail, reinterpret_cast<uint8_t*>(&length), kLengthBytes);
    if (length == 0 || length > max_record_bytes() ||
        kLengthBytes + length > avail) {
      return Status::Internal("corrupt shm ring: impossible record length");
    }
    out->resize(static_cast<size_t>(length));
    CopyOut(tail + kLengthBytes, out->data(), out->size());
    control_->tail.store(tail + kLengthBytes + length,
                         std::memory_order_release);
    return true;
  }

 private:
  struct Control {
    // Total bytes ever published / consumed; the difference is the fill.
    alignas(64) std::atomic<uint64_t> head;
    alignas(64) std::atomic<uint64_t> tail;
  };
  static_assert(sizeof(Control) == kControlBytes);
  static_assert(std::atomic<uint64_t>::is_always_lock_free);

  // Copy helpers split at the data-area boundary (mask wrapping).
  void CopyIn(uint64_t pos, const uint8_t* src, size_t n) {
    const size_t offset = static_cast<size_t>(pos & mask_);
    const size_t first = n < capacity_ - offset ? n : capacity_ - offset;
    std::memcpy(data_ + offset, src, first);
    std::memcpy(data_, src + first, n - first);
  }
  void CopyOut(uint64_t pos, uint8_t* dst, size_t n) const {
    const size_t offset = static_cast<size_t>(pos & mask_);
    const size_t first = n < capacity_ - offset ? n : capacity_ - offset;
    std::memcpy(dst, data_ + offset, first);
    std::memcpy(dst + first, data_, n - first);
  }

  Control* control_ = nullptr;
  uint8_t* data_ = nullptr;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_SHM_RING_H_
