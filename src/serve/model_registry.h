// Named, immutable, ref-counted fitted models.
//
// The registry is the serving system's source of truth for "which estimator
// answers queries under this name". Models are immutable once registered —
// DensityEstimator evaluation is const and thread-safe — so concurrency
// reduces to ref-counting: Get hands out a shared_ptr, and a hot-swap or
// evict only unlinks the name. In-flight requests holding the old pointer
// finish on the old model; the last reference frees it. No request ever
// observes a half-replaced model.
//
// Registration is either programmatic (Put an estimator you built in
// process — KDE, grid, histogram, anything implementing DensityEstimator)
// or from a saved .dbsk file (LoadKdeFile), which is the daemon's path:
// one expensive fitting pass elsewhere, then every server re-reads the
// tiny model file.

#ifndef DBS_SERVE_MODEL_REGISTRY_H_
#define DBS_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "density/density_estimator.h"
#include "util/status.h"

namespace dbs::serve {

// A registered model plus its descriptive metadata.
struct ModelEntry {
  std::string name;
  // What the model is, for humans ("kde", "grid", ...).
  std::string kind;
  int dim = 0;
  int64_t total_mass = 0;
  // Bumped every time the name is re-registered (hot-swap counter).
  uint64_t generation = 1;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Registers `model` under `name`, replacing any existing model of that
  // name (hot-swap). The registry shares ownership; callers may keep their
  // reference. `kind` is a short human-readable tag.
  [[nodiscard]] Status Put(const std::string& name,
             std::shared_ptr<const density::DensityEstimator> model,
             const std::string& kind = "estimator");

  // Loads a .dbsk KDE model from `path` and registers it under `name`.
  [[nodiscard]] Status LoadKdeFile(const std::string& name, const std::string& path);

  // Like LoadKdeFile, but serves the model through the dual-tree evaluator
  // (density/dual_tree_kde.h) instead of the flat grid index: exact (and
  // bitwise identical to the ascending-center Kde path) when rel_error is
  // 0, certified-approximate within `rel_error` otherwise. Registered under
  // kind "kde-dualtree"; dispatch needs no changes — it is just another
  // DensityEstimator.
  [[nodiscard]] Status LoadKdeFileDualTree(const std::string& name,
                                           const std::string& path,
                                           double rel_error = 0.0);

  // Looks up a model by name. The returned pointer keeps the model alive
  // even if it is concurrently evicted or hot-swapped.
  [[nodiscard]] Result<std::shared_ptr<const density::DensityEstimator>> Get(
      const std::string& name) const;

  // Unlinks the name. In-flight holders of the model keep it alive.
  [[nodiscard]] Status Evict(const std::string& name);

  // Snapshot of the registered models, sorted by name.
  std::vector<ModelEntry> List() const;

  int64_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const density::DensityEstimator> model;
    ModelEntry entry;
  };

  // Guards slots_. Leaf lock: lookups copy the shared_ptr out and release
  // before any estimator call, so evaluation never runs under the lock.
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_MODEL_REGISTRY_H_
