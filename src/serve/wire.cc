#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dbs::serve {
namespace {

// Frame header: magic, version, type (u32 each) + payload length (u64).
constexpr size_t kFrameHeaderBytes = 20;

bool IsKnownMessageType(uint32_t type) {
  return (type >= static_cast<uint32_t>(MessageType::kRegisterRequest) &&
          type <= static_cast<uint32_t>(MessageType::kShmAttachRequest)) ||
         (type >= static_cast<uint32_t>(MessageType::kErrorResponse) &&
          type <= static_cast<uint32_t>(MessageType::kPartialFitResponse));
}

[[nodiscard]] Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt wire payload: ") +
                                 what);
}

}  // namespace

// ---- WireWriter -----------------------------------------------------------

void WireWriter::PutU32(uint32_t v) {
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(&v);
  buf_.insert(buf_.end(), raw, raw + sizeof(v));
}

void WireWriter::PutU64(uint64_t v) {
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(&v);
  buf_.insert(buf_.end(), raw, raw + sizeof(v));
}

void WireWriter::PutDouble(double v) {
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(&v);
  buf_.insert(buf_.end(), raw, raw + sizeof(v));
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(s.data());
  buf_.insert(buf_.end(), raw, raw + s.size());
}

void WireWriter::PutDoubles(const std::vector<double>& values) {
  PutU64(values.size());
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(values.data());
  buf_.insert(buf_.end(), raw, raw + values.size() * sizeof(double));
}

void WireWriter::PutPoints(const data::PointSet& points) {
  PutU32(static_cast<uint32_t>(points.dim()));
  PutU64(static_cast<uint64_t>(points.size()));
  const std::vector<double>& flat = points.flat();
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(flat.data());
  buf_.insert(buf_.end(), raw, raw + flat.size() * sizeof(double));
}

// ---- WireReader -----------------------------------------------------------

bool WireReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || size_ - cursor_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_ + cursor_;
  cursor_ += n;
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  const uint8_t* raw;
  if (!Take(sizeof(*v), &raw)) return false;
  std::memcpy(v, raw, sizeof(*v));
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  const uint8_t* raw;
  if (!Take(sizeof(*v), &raw)) return false;
  std::memcpy(v, raw, sizeof(*v));
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t raw;
  if (!GetU64(&raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool WireReader::GetDouble(double* v) {
  const uint8_t* raw;
  if (!Take(sizeof(*v), &raw)) return false;
  std::memcpy(v, raw, sizeof(*v));
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t size;
  if (!GetU32(&size)) return false;
  if (size > kMaxWireString) {
    ok_ = false;
    return false;
  }
  const uint8_t* raw;
  if (!Take(size, &raw)) return false;
  s->assign(reinterpret_cast<const char*>(raw), size);
  return true;
}

bool WireReader::GetDoubles(std::vector<double>* values) {
  uint64_t count;
  if (!GetU64(&count)) return false;
  // Bound the allocation by the bytes actually present.
  if (count > (size_ - cursor_) / sizeof(double)) {
    ok_ = false;
    return false;
  }
  const uint8_t* raw;
  if (!Take(static_cast<size_t>(count) * sizeof(double), &raw)) return false;
  values->resize(static_cast<size_t>(count));
  std::memcpy(values->data(), raw, static_cast<size_t>(count) *
                                       sizeof(double));
  return true;
}

bool WireReader::GetPoints(data::PointSet* points) {
  uint32_t dim;
  uint64_t count;
  if (!GetU32(&dim) || !GetU64(&count)) return false;
  if (dim == 0 || dim > kMaxWireDim) {
    ok_ = false;
    return false;
  }
  // Bound count before multiplying so the coordinate total cannot wrap.
  if (count > kMaxPayloadBytes / (dim * sizeof(double))) {
    ok_ = false;
    return false;
  }
  const uint64_t coords = count * static_cast<uint64_t>(dim);
  if (coords > (size_ - cursor_) / sizeof(double)) {
    ok_ = false;
    return false;
  }
  const uint8_t* raw;
  if (!Take(static_cast<size_t>(coords) * sizeof(double), &raw)) {
    return false;
  }
  data::PointSet decoded(static_cast<int>(dim));
  decoded.Reserve(static_cast<int64_t>(count));
  std::vector<double> row(dim);
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(row.data(), raw + i * dim * sizeof(double),
                dim * sizeof(double));
    decoded.Append(row.data());
  }
  *points = std::move(decoded);
  return true;
}

// ---- Message codecs -------------------------------------------------------

std::vector<uint8_t> EncodeRegisterRequest(const RegisterRequest& request) {
  WireWriter w;
  w.PutString(request.name);
  w.PutString(request.path);
  return w.Take();
}

[[nodiscard]] Result<RegisterRequest> DecodeRegisterRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  RegisterRequest request;
  r.GetString(&request.name);
  r.GetString(&request.path);
  if (!r.AtEnd()) return Corrupt("register request");
  if (request.name.empty()) return Corrupt("empty model name");
  return request;
}

std::vector<uint8_t> EncodeEvictRequest(const EvictRequest& request) {
  WireWriter w;
  w.PutString(request.name);
  return w.Take();
}

[[nodiscard]] Result<EvictRequest> DecodeEvictRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  EvictRequest request;
  r.GetString(&request.name);
  if (!r.AtEnd()) return Corrupt("evict request");
  if (request.name.empty()) return Corrupt("empty model name");
  return request;
}

std::vector<uint8_t> EncodeDensityRequest(const DensityBatchRequest& request) {
  WireWriter w;
  w.PutString(request.model);
  w.PutPoints(request.points);
  return w.Take();
}

[[nodiscard]] Result<DensityBatchRequest> DecodeDensityRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  DensityBatchRequest request;
  r.GetString(&request.model);
  r.GetPoints(&request.points);
  if (!r.AtEnd()) return Corrupt("density request");
  if (request.model.empty()) return Corrupt("empty model name");
  return request;
}

std::vector<uint8_t> EncodeDensityResponse(
    const DensityBatchResponse& response) {
  WireWriter w;
  w.PutDoubles(response.densities);
  return w.Take();
}

[[nodiscard]] Result<DensityBatchResponse> DecodeDensityResponse(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  DensityBatchResponse response;
  r.GetDoubles(&response.densities);
  if (!r.AtEnd()) return Corrupt("density response");
  return response;
}

std::vector<uint8_t> EncodeSampleRequest(const SampleRequest& request) {
  WireWriter w;
  w.PutString(request.model);
  w.PutDouble(request.a);
  w.PutI64(request.target_size);
  w.PutDouble(request.density_floor_fraction);
  w.PutU64(request.seed);
  w.PutPoints(request.points);
  return w.Take();
}

[[nodiscard]] Result<SampleRequest> DecodeSampleRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  SampleRequest request;
  r.GetString(&request.model);
  r.GetDouble(&request.a);
  r.GetI64(&request.target_size);
  r.GetDouble(&request.density_floor_fraction);
  r.GetU64(&request.seed);
  r.GetPoints(&request.points);
  if (!r.AtEnd()) return Corrupt("sample request");
  if (request.model.empty()) return Corrupt("empty model name");
  if (request.target_size <= 0) return Corrupt("non-positive target size");
  return request;
}

std::vector<uint8_t> EncodeSampleResponse(const SampleResponse& response) {
  WireWriter w;
  w.PutPoints(response.points);
  w.PutDoubles(response.inclusion_probs);
  w.PutDoubles(response.densities);
  w.PutDouble(response.normalizer);
  w.PutI64(response.clamped_count);
  return w.Take();
}

[[nodiscard]] Result<SampleResponse> DecodeSampleResponse(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  SampleResponse response;
  r.GetPoints(&response.points);
  r.GetDoubles(&response.inclusion_probs);
  r.GetDoubles(&response.densities);
  r.GetDouble(&response.normalizer);
  r.GetI64(&response.clamped_count);
  if (!r.AtEnd()) return Corrupt("sample response");
  const size_t n = static_cast<size_t>(response.points.size());
  if (response.inclusion_probs.size() != n ||
      response.densities.size() != n) {
    return Corrupt("sample response arrays disagree on length");
  }
  return response;
}

std::vector<uint8_t> EncodeOutlierRequest(
    const OutlierScoreBatchRequest& request) {
  WireWriter w;
  w.PutString(request.model);
  w.PutDouble(request.radius);
  w.PutU32(static_cast<uint32_t>(request.metric));
  w.PutI64(request.max_neighbors);
  w.PutU32(static_cast<uint32_t>(request.integration));
  w.PutU32(static_cast<uint32_t>(request.qmc_samples));
  w.PutPoints(request.points);
  return w.Take();
}

[[nodiscard]] Result<OutlierScoreBatchRequest> DecodeOutlierRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  OutlierScoreBatchRequest request;
  uint32_t metric = 0;
  uint32_t integration = 0;
  uint32_t qmc_samples = 0;
  r.GetString(&request.model);
  r.GetDouble(&request.radius);
  r.GetU32(&metric);
  r.GetI64(&request.max_neighbors);
  r.GetU32(&integration);
  r.GetU32(&qmc_samples);
  r.GetPoints(&request.points);
  if (!r.AtEnd()) return Corrupt("outlier request");
  if (request.model.empty()) return Corrupt("empty model name");
  if (metric > static_cast<uint32_t>(data::Metric::kLinf)) {
    return Corrupt("unknown metric");
  }
  if (integration >
      static_cast<uint32_t>(outlier::BallIntegration::kQuasiMonteCarlo)) {
    return Corrupt("unknown integration method");
  }
  if (qmc_samples == 0 || qmc_samples > 1u << 20) {
    return Corrupt("qmc_samples out of range");
  }
  request.metric = static_cast<data::Metric>(metric);
  request.integration = static_cast<outlier::BallIntegration>(integration);
  request.qmc_samples = static_cast<int>(qmc_samples);
  return request;
}

std::vector<uint8_t> EncodeOutlierResponse(
    const OutlierScoreBatchResponse& response) {
  WireWriter w;
  w.PutDoubles(response.expected_neighbors);
  w.PutU64(response.likely_outlier.size());
  WireWriter flags;
  for (uint8_t flag : response.likely_outlier) {
    flags.PutU32(flag);  // u32 per flag keeps the format trivially flat
  }
  std::vector<uint8_t> flag_bytes = flags.Take();
  std::vector<uint8_t> buf = w.Take();
  buf.insert(buf.end(), flag_bytes.begin(), flag_bytes.end());
  return buf;
}

[[nodiscard]] Result<OutlierScoreBatchResponse> DecodeOutlierResponse(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  OutlierScoreBatchResponse response;
  r.GetDoubles(&response.expected_neighbors);
  uint64_t num_flags = 0;
  if (r.GetU64(&num_flags)) {
    if (num_flags == response.expected_neighbors.size()) {
      response.likely_outlier.reserve(static_cast<size_t>(num_flags));
      for (uint64_t i = 0; i < num_flags; ++i) {
        uint32_t flag = 0;
        if (!r.GetU32(&flag) || flag > 1) break;
        response.likely_outlier.push_back(static_cast<uint8_t>(flag));
      }
    }
  }
  if (!r.AtEnd() ||
      response.likely_outlier.size() != response.expected_neighbors.size()) {
    return Corrupt("outlier response");
  }
  return response;
}

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& response) {
  WireWriter w;
  w.PutU64(response.per_type.size());
  for (const RequestStats& row : response.per_type) {
    w.PutU32(static_cast<uint32_t>(row.type));
    w.PutU64(row.count);
    w.PutU64(row.errors);
    w.PutU64(row.points);
    w.PutDouble(row.latency_sum_us);
    w.PutDouble(row.latency_min_us);
    w.PutDouble(row.latency_max_us);
    w.PutDouble(row.latency_p50_us);
    w.PutDouble(row.latency_p99_us);
  }
  w.PutU64(response.models.size());
  for (const std::string& name : response.models) w.PutString(name);
  return w.Take();
}

[[nodiscard]] Result<StatsResponse> DecodeStatsResponse(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  StatsResponse response;
  uint64_t rows = 0;
  if (!r.GetU64(&rows) || rows > 1024) return Corrupt("stats response");
  for (uint64_t i = 0; i < rows; ++i) {
    RequestStats row;
    uint32_t type = 0;
    bool ok = r.GetU32(&type) && r.GetU64(&row.count) &&
              r.GetU64(&row.errors) && r.GetU64(&row.points) &&
              r.GetDouble(&row.latency_sum_us) &&
              r.GetDouble(&row.latency_min_us) &&
              r.GetDouble(&row.latency_max_us) &&
              r.GetDouble(&row.latency_p50_us) &&
              r.GetDouble(&row.latency_p99_us);
    if (!ok) return Corrupt("stats response row");
    row.type = static_cast<RequestType>(type);
    response.per_type.push_back(row);
  }
  uint64_t models = 0;
  if (!r.GetU64(&models) || models > 1u << 20) {
    return Corrupt("stats response models");
  }
  for (uint64_t i = 0; i < models; ++i) {
    std::string name;
    if (!r.GetString(&name)) return Corrupt("stats response model name");
    response.models.push_back(std::move(name));
  }
  if (!r.AtEnd()) return Corrupt("stats response");
  return response;
}

std::vector<uint8_t> EncodePartialFitRequest(
    const PartialFitRequest& request) {
  WireWriter w;
  w.PutString(request.path);
  w.PutI64(request.shard);
  w.PutI64(request.num_shards);
  w.PutI64(request.num_kernels);
  w.PutU32(static_cast<uint32_t>(request.kernel));
  w.PutU32(static_cast<uint32_t>(request.bandwidth_rule));
  w.PutDouble(request.fixed_bandwidth);
  w.PutDouble(request.bandwidth_scale);
  w.PutU64(request.seed);
  return w.Take();
}

[[nodiscard]] Result<PartialFitRequest> DecodePartialFitRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  PartialFitRequest request;
  uint32_t kernel = 0;
  uint32_t rule = 0;
  r.GetString(&request.path);
  r.GetI64(&request.shard);
  r.GetI64(&request.num_shards);
  r.GetI64(&request.num_kernels);
  r.GetU32(&kernel);
  r.GetU32(&rule);
  r.GetDouble(&request.fixed_bandwidth);
  r.GetDouble(&request.bandwidth_scale);
  r.GetU64(&request.seed);
  if (!r.AtEnd()) return Corrupt("partial-fit request");
  if (request.path.empty()) return Corrupt("empty dataset path");
  if (request.num_shards <= 0 ||
      request.num_shards > static_cast<int64_t>(kMaxWireShards)) {
    return Corrupt("shard count out of range");
  }
  if (request.shard < 0 || request.shard >= request.num_shards) {
    return Corrupt("shard index out of range");
  }
  if (request.num_kernels <= 0) return Corrupt("non-positive kernel count");
  if (kernel > static_cast<uint32_t>(density::KernelType::kGaussian)) {
    return Corrupt("unknown kernel type");
  }
  if (rule > static_cast<uint32_t>(density::BandwidthRule::kFixed)) {
    return Corrupt("unknown bandwidth rule");
  }
  request.kernel = static_cast<density::KernelType>(kernel);
  request.bandwidth_rule = static_cast<density::BandwidthRule>(rule);
  return request;
}

std::vector<uint8_t> EncodeShmAttachRequest(const ShmAttachRequest& request) {
  WireWriter w;
  w.PutString(request.name);
  w.PutU64(request.ring_bytes);
  return w.Take();
}

[[nodiscard]] Result<ShmAttachRequest> DecodeShmAttachRequest(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ShmAttachRequest request;
  r.GetString(&request.name);
  r.GetU64(&request.ring_bytes);
  if (!r.AtEnd()) return Corrupt("shm attach request");
  if (request.name.empty() || request.name[0] != '/' ||
      request.name.size() > kMaxShmName) {
    return Corrupt("bad shm region name");
  }
  const uint64_t bytes = request.ring_bytes;
  if (bytes < kMinShmRingBytes || bytes > kMaxShmRingBytes ||
      (bytes & (bytes - 1)) != 0) {
    return Corrupt("shm ring capacity must be a power of two in range");
  }
  return request;
}

std::vector<uint8_t> EncodePartialKde(const density::PartialKde& partial) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(partial.parts.size()));
  for (const density::KdeShardPart& part : partial.parts) {
    w.PutI64(part.shard);
    w.PutI64(part.num_shards);
    w.PutI64(part.total_rows);
    w.PutI64(part.rows);
    w.PutPoints(part.centers);
    // Bounds: presence flag, then lo/hi per dimension. An absent box decodes
    // back to the ±inf-sentinel empty box, so the flag (not sentinel bytes)
    // carries emptiness.
    w.PutU32(part.bounds.empty() ? 0u : 1u);
    if (!part.bounds.empty()) {
      for (int j = 0; j < part.centers.dim(); ++j) {
        w.PutDouble(part.bounds.lo(j));
      }
      for (int j = 0; j < part.centers.dim(); ++j) {
        w.PutDouble(part.bounds.hi(j));
      }
    }
    // One Welford accumulator per dimension, as raw state — FromParts
    // rebuilds them bitwise on the other end.
    for (const OnlineMoments& m : part.moments) {
      w.PutI64(m.count());
      w.PutDouble(m.mean());
      w.PutDouble(m.m2());
      w.PutDouble(m.min());
      w.PutDouble(m.max());
    }
  }
  return w.Take();
}

[[nodiscard]] Result<density::PartialKde> DecodePartialKde(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  density::PartialKde partial;
  uint32_t num_parts = 0;
  if (!r.GetU32(&num_parts) || num_parts == 0 ||
      num_parts > kMaxWireShards) {
    return Corrupt("partial KDE state");
  }
  int dim = 0;
  for (uint32_t i = 0; i < num_parts; ++i) {
    density::KdeShardPart part;
    r.GetI64(&part.shard);
    r.GetI64(&part.num_shards);
    r.GetI64(&part.total_rows);
    r.GetI64(&part.rows);
    if (!r.GetPoints(&part.centers)) return Corrupt("partial KDE centers");
    if (i == 0) {
      dim = part.centers.dim();
    } else if (part.centers.dim() != dim) {
      return Corrupt("partial KDE parts disagree on dimensionality");
    }
    uint32_t has_bounds = 0;
    if (!r.GetU32(&has_bounds) || has_bounds > 1) {
      return Corrupt("partial KDE bounds");
    }
    if (has_bounds == 1) {
      std::vector<double> lo(static_cast<size_t>(dim));
      std::vector<double> hi(static_cast<size_t>(dim));
      bool box_ok = true;
      for (double& v : lo) box_ok = box_ok && r.GetDouble(&v);
      for (double& v : hi) box_ok = box_ok && r.GetDouble(&v);
      if (!box_ok) return Corrupt("partial KDE bounds");
      part.bounds = data::BoundingBox(std::move(lo), std::move(hi));
    } else {
      part.bounds = data::BoundingBox(dim);
    }
    part.moments.reserve(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) {
      int64_t count = 0;
      double mean = 0.0;
      double m2 = 0.0;
      double mn = 0.0;
      double mx = 0.0;
      bool moments_ok = r.GetI64(&count) && r.GetDouble(&mean) &&
                        r.GetDouble(&m2) && r.GetDouble(&mn) &&
                        r.GetDouble(&mx);
      if (!moments_ok || count < 0) return Corrupt("partial KDE moments");
      part.moments.push_back(
          OnlineMoments::FromParts(count, mean, m2, mn, mx));
    }
    if (part.num_shards <= 0 ||
        part.num_shards > static_cast<int64_t>(kMaxWireShards) ||
        part.shard < 0 || part.shard >= part.num_shards || part.rows < 0 ||
        part.total_rows < 0 || part.rows > part.total_rows) {
      return Corrupt("partial KDE shard identity");
    }
    if (!partial.parts.empty() &&
        part.shard <= partial.parts.back().shard) {
      return Corrupt("partial KDE shards out of order");
    }
    partial.parts.push_back(std::move(part));
  }
  if (!r.AtEnd()) return Corrupt("partial KDE state");
  return partial;
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message().substr(0, kMaxWireString));
  return w.Take();
}

[[nodiscard]] Status DecodeErrorResponse(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  r.GetU32(&code);
  r.GetString(&message);
  if (!r.AtEnd() ||
      code > static_cast<uint32_t>(StatusCode::kUnavailable) ||
      code == static_cast<uint32_t>(StatusCode::kOk)) {
    return Status::Internal("malformed error response from server");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// ---- Framing --------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  WireWriter w;
  // One allocation for the whole frame: the header Puts below would
  // otherwise grow the buffer through several reallocations (and gcc's
  // -Wstringop-overflow reasons about the stale intermediate capacities).
  w.Reserve(kFrameHeaderBytes + payload.size());
  w.PutU32(kWireMagic);
  w.PutU32(kWireVersion);
  w.PutU32(static_cast<uint32_t>(type));
  w.PutU64(payload.size());
  std::vector<uint8_t> frame = w.Take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

[[nodiscard]] Result<Frame> DecodeFrame(const uint8_t* data, size_t size,
                          size_t* consumed) {
  if (size < kFrameHeaderBytes) {
    return Status::IoError("short frame header");
  }
  WireReader r(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t type = 0;
  uint64_t payload_bytes = 0;
  r.GetU32(&magic);
  r.GetU32(&version);
  r.GetU32(&type);
  r.GetU64(&payload_bytes);
  DBS_CHECK(r.AtEnd());
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type");
  }
  if (payload_bytes > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  if (size - kFrameHeaderBytes < payload_bytes) {
    return Status::IoError("short frame payload");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload.assign(data + kFrameHeaderBytes,
                       data + kFrameHeaderBytes + payload_bytes);
  if (consumed != nullptr) {
    *consumed = kFrameHeaderBytes + static_cast<size_t>(payload_bytes);
  }
  return frame;
}

namespace {

[[nodiscard]] Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the process with SIGPIPE.
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `size` bytes; "connection closed" on EOF before the first
// byte, "truncated frame" on EOF mid-read.
[[nodiscard]] Status ReadAll(int fd, uint8_t* data, size_t size) {
  size_t read_bytes = 0;
  while (read_bytes < size) {
    ssize_t n = ::read(fd, data + read_bytes, size - read_bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError(read_bytes == 0 ? "connection closed"
                                             : "truncated frame");
    }
    read_bytes += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

[[nodiscard]] Status WriteFrame(int fd, MessageType type,
                  const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame = EncodeFrame(type, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

[[nodiscard]] Result<Frame> ReadFrame(int fd) {
  uint8_t header[kFrameHeaderBytes];
  DBS_RETURN_IF_ERROR(ReadAll(fd, header, kFrameHeaderBytes));
  WireReader r(header, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t type = 0;
  uint64_t payload_bytes = 0;
  r.GetU32(&magic);
  r.GetU32(&version);
  r.GetU32(&type);
  r.GetU64(&payload_bytes);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type");
  }
  if (payload_bytes > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload.resize(static_cast<size_t>(payload_bytes));
  if (payload_bytes > 0) {
    DBS_RETURN_IF_ERROR(
        ReadAll(fd, frame.payload.data(), frame.payload.size()));
  }
  return frame;
}

}  // namespace dbs::serve
