#include "serve/shm_transport.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/dispatch.h"
#include "serve/service.h"

namespace dbs::serve {
namespace {

[[nodiscard]] Status ShmError(const char* what, const std::string& name) {
  return Status::IoError(std::string(what) + " '" + name +
                         "': " + std::strerror(errno));
}

// The header is written by the creator before the name is shared and never
// mutated afterwards, so plain loads are race-free on both sides.
ShmRegionHeader* HeaderOf(void* map) {
  return static_cast<ShmRegionHeader*>(map);
}

uint8_t* RingBase(void* map, int which) {
  return static_cast<uint8_t*>(map) + sizeof(ShmRegionHeader) +
         static_cast<size_t>(which) *
             ShmRing::RegionBytes(HeaderOf(map)->ring_bytes);
}

}  // namespace

// ---- ShmSession -----------------------------------------------------------

Result<std::unique_ptr<ShmSession>> ShmSession::Create(
    const std::string& name, size_t ring_bytes) {
  if (name.empty() || name[0] != '/' || name.size() > kMaxShmName) {
    return Status::InvalidArgument("bad shm region name: " + name);
  }
  if (!ShmRing::IsPowerOfTwo(ring_bytes) || ring_bytes < kMinShmRingBytes ||
      ring_bytes > kMaxShmRingBytes) {
    return Status::InvalidArgument(
        "shm ring capacity must be a power of two in "
        "[kMinShmRingBytes, kMaxShmRingBytes]");
  }
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return ShmError("shm_open create", name);

  const size_t bytes = ShmRegionBytes(ring_bytes);
  std::unique_ptr<ShmSession> session(
      new ShmSession());  // dbs-lint: allow(raw-alloc): private ctor
  session->name_ = name;
  session->unlinked_ = false;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    Status status = ShmError("ftruncate", name);
    ::close(fd);
    return status;  // the session destructor unlinks the half-made region
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);  // the mapping keeps the region alive; the fd does not
  if (map == MAP_FAILED) return ShmError("mmap", name);
  session->map_ = map;
  session->map_bytes_ = bytes;
  session->ring_bytes_ = ring_bytes;

  ShmRegionHeader* header = HeaderOf(map);
  header->magic = kShmRegionMagic;
  header->version = kShmRegionVersion;
  header->ring_bytes = ring_bytes;
  session->request_ring_ = ShmRing::Create(RingBase(map, 0), ring_bytes);
  session->response_ring_ = ShmRing::Create(RingBase(map, 1), ring_bytes);
  return session;
}

Result<std::unique_ptr<ShmSession>> ShmSession::Open(
    const std::string& name) {
  if (name.empty() || name[0] != '/' || name.size() > kMaxShmName) {
    return Status::InvalidArgument("bad shm region name: " + name);
  }
  int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("shm region absent: " + name);
    }
    return ShmError("shm_open", name);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = ShmError("fstat", name);
    ::close(fd);
    return status;
  }
  // Validate the header BEFORE trusting any size derived from it (the same
  // defensive posture as the wire decoders).
  if (static_cast<size_t>(st.st_size) < sizeof(ShmRegionHeader)) {
    ::close(fd);
    return Status::InvalidArgument("shm region too small for its header");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return ShmError("mmap", name);

  std::unique_ptr<ShmSession> session(
      new ShmSession());  // dbs-lint: allow(raw-alloc): private ctor
  session->map_ = map;
  session->map_bytes_ = static_cast<size_t>(st.st_size);

  const ShmRegionHeader* header = HeaderOf(map);
  if (header->magic != kShmRegionMagic) {
    return Status::InvalidArgument("bad shm region magic");
  }
  if (header->version != kShmRegionVersion) {
    return Status::InvalidArgument("unsupported shm region version");
  }
  const uint64_t ring_bytes = header->ring_bytes;
  if (!ShmRing::IsPowerOfTwo(ring_bytes) || ring_bytes < kMinShmRingBytes ||
      ring_bytes > kMaxShmRingBytes) {
    return Status::InvalidArgument("bad shm ring capacity");
  }
  if (session->map_bytes_ < ShmRegionBytes(ring_bytes)) {
    return Status::InvalidArgument("shm region smaller than its header says");
  }
  session->ring_bytes_ = static_cast<size_t>(ring_bytes);
  session->request_ring_ =
      ShmRing::Attach(RingBase(map, 0), session->ring_bytes_);
  session->response_ring_ =
      ShmRing::Attach(RingBase(map, 1), session->ring_bytes_);
  return session;
}

ShmSession::~ShmSession() {
  Unlink();
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void ShmSession::Unlink() {
  if (!unlinked_) {
    ::shm_unlink(name_.c_str());
    unlinked_ = true;
  }
}

// ---- ShmServerDrain -------------------------------------------------------

ShmServerDrain::ShmServerDrain(ModelService* service,
                               std::function<void()> on_shutdown,
                               const Options& options)
    : service_(service),
      on_shutdown_(std::move(on_shutdown)),
      options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

ShmServerDrain::~ShmServerDrain() { Stop(); }

void ShmServerDrain::Attach(int id, std::unique_ptr<ShmSession> session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto entry = std::make_unique<Entry>();
    entry->id = id;
    entry->session = std::move(session);
    entries_.push_back(std::move(entry));
  }
  cv_.notify_all();
}

void ShmServerDrain::Detach(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry->id == id) entry->dead.store(true, std::memory_order_relaxed);
  }
}

void ShmServerDrain::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_flag_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void ShmServerDrain::Loop() {
  ShmBackoff backoff;
  std::vector<Entry*> live;
  for (;;) {
    live.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The drain thread is the only eraser, so the Entry pointers below
      // stay valid until it loops back here; Attach only appends and
      // Detach only flips `dead`.
      std::erase_if(entries_, [](const std::unique_ptr<Entry>& e) {
        return e->dead.load(std::memory_order_relaxed);
      });
      if (stop_) return;
      if (entries_.empty()) {
        // Nothing mapped: sleep until an attach or shutdown wakes us.
        cv_.wait(lock,
                 [this] { return stop_ || !entries_.empty(); });
        if (stop_) return;
      }
      live.reserve(entries_.size());
      for (auto& entry : entries_) live.push_back(entry.get());
    }
    bool any = false;
    for (Entry* entry : live) any = DrainOne(entry) || any;
    if (any) {
      backoff.Reset();
    } else {
      backoff.Step();
    }
  }
}

bool ShmServerDrain::DrainOne(Entry* entry) {
  bool progressed = false;
  for (int i = 0;
       i < options_.drain_batch &&
       !entry->dead.load(std::memory_order_relaxed);
       ++i) {
    auto popped = entry->session->request_ring().TryPop(&scratch_);
    if (!popped.ok()) {
      // Torn or overwritten frame: the ring can no longer be trusted to be
      // frame-aligned — the shm analogue of closing a misbehaving TCP
      // connection. Best-effort error response, then stop serving it.
      (void)PushResponse(
          entry, Frame{MessageType::kErrorResponse,
                       EncodeErrorResponse(popped.status())});
      entry->dead.store(true, std::memory_order_relaxed);
      break;
    }
    if (!*popped) break;
    progressed = true;

    size_t consumed = 0;
    auto frame = DecodeFrame(scratch_.data(), scratch_.size(), &consumed);
    Frame response;
    bool close = false;
    if (!frame.ok() || consumed != scratch_.size()) {
      Status status = frame.ok() ? Status::InvalidArgument(
                                       "trailing garbage after shm frame")
                                 : frame.status();
      response = {MessageType::kErrorResponse, EncodeErrorResponse(status)};
      close = true;
    } else {
      DispatchResult dispatched = DispatchFrame(service_, *frame);
      response = std::move(dispatched.response);
      close = dispatched.close;
      if (dispatched.shutdown && on_shutdown_) on_shutdown_();
    }
    if (!PushResponse(entry, response)) {
      entry->dead.store(true, std::memory_order_relaxed);
      break;
    }
    if (close) {
      entry->dead.store(true, std::memory_order_relaxed);
      break;
    }
  }
  return progressed;
}

bool ShmServerDrain::PushResponse(Entry* entry, const Frame& response) {
  ShmRing& ring = entry->session->response_ring();
  std::vector<uint8_t> bytes = EncodeFrame(response.type, response.payload);
  if (bytes.size() > ring.max_record_bytes()) {
    // The answer physically cannot travel this ring; substitute an error
    // the client can act on (retry over TCP or with a bigger ring).
    bytes = EncodeFrame(
        MessageType::kErrorResponse,
        EncodeErrorResponse(Status::Unavailable(
            "response frame exceeds the shm ring capacity; use a larger "
            "shm_ring_bytes or transport=tcp")));
    if (bytes.size() > ring.max_record_bytes()) return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + options_.push_deadline;
  ShmBackoff backoff;
  while (!ring.TryPush(bytes.data(), bytes.size())) {
    // Full response ring: the client has in-flight responses it has not
    // consumed yet. Wait it out briefly — pipelining makes this normal —
    // but give up on a client that stopped draining entirely.
    if (backoff.Step()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      if (stop_flag_.load(std::memory_order_relaxed) ||
          entry->dead.load(std::memory_order_relaxed)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dbs::serve
