#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace dbs::serve {
namespace {

// Region names are per-session: pid + control fd + a process-wide counter
// keeps parallel clients (and quick reconnects on a recycled fd) distinct.
std::string FreshRegionName(int fd) {
  static std::atomic<uint64_t> counter{0};
  return "/dbsq-" + std::to_string(::getpid()) + "-" + std::to_string(fd) +
         "-" + std::to_string(counter.fetch_add(1));
}

}  // namespace

Result<Client> Client::Connect(uint16_t port, const std::string& host) {
  ClientOptions options;
  options.host = host;
  return Connect(port, options);
}

Result<Client> Client::Connect(uint16_t port, const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError(std::string("connect to ") + options.host +
                                    ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  Client client(fd);
  if (options.transport == TransportKind::kShm) {
    Status attached = client.AttachShm(options.shm_ring_bytes);
    if (!attached.ok()) {
      if (!options.shm_fallback_to_tcp) return attached;
      // Keep serving over the TCP connection we already have; the caller
      // can read why via shm_status().
      client.shm_status_ = attached;
    }
  }
  return client;
}

Status Client::AttachShm(size_t ring_bytes) {
  DBS_ASSIGN_OR_RETURN(std::unique_ptr<ShmSession> session,
                       ShmSession::Create(FreshRegionName(fd_), ring_bytes));
  ShmAttachRequest request;
  request.name = session->name();
  request.ring_bytes = ring_bytes;
  // Still on TCP here (transport_ flips only on success), so this is an
  // ordinary blocking exchange on the control connection. The round trip
  // also publishes the region initialization to the daemon: its reply
  // happens-after our writes above.
  auto response = RoundTrip(MessageType::kShmAttachRequest,
                            EncodeShmAttachRequest(request),
                            MessageType::kOkResponse);
  // Unlink regardless of outcome — the daemon has mapped the region (or
  // never will), so the name has served its purpose and the kernel should
  // reclaim the pages once both mappings drop, crash included.
  session->Unlink();
  DBS_RETURN_IF_ERROR(response.status());
  shm_ = std::move(session);
  transport_ = TransportKind::kShm;
  return Status::Ok();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      transport_(other.transport_),
      shm_status_(std::move(other.shm_status_)),
      shm_(std::move(other.shm_)),
      pending_(std::move(other.pending_)),
      scratch_(std::move(other.scratch_)) {
  other.fd_ = -1;
  other.transport_ = TransportKind::kTcp;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    transport_ = other.transport_;
    shm_status_ = std::move(other.shm_status_);
    shm_ = std::move(other.shm_);
    pending_ = std::move(other.pending_);
    scratch_ = std::move(other.scratch_);
    other.fd_ = -1;
    other.transport_ = TransportKind::kTcp;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::ServerClosed() const {
  uint8_t byte = 0;
  // After the shm attach the daemon never writes on the control socket, so
  // any readable state here is EOF or an error — both mean the session is
  // over.
  ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return false;
  }
  return true;
}

Status Client::Submit(MessageType type, const std::vector<uint8_t>& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client connection is closed");
  }
  if (transport_ == TransportKind::kTcp) {
    return WriteFrame(fd_, type, payload);
  }
  ShmRing& ring = shm_->request_ring();
  std::vector<uint8_t> bytes = EncodeFrame(type, payload);
  if (bytes.size() > ring.max_record_bytes()) {
    return Status::InvalidArgument(
        "request frame exceeds the shm ring capacity; use a larger "
        "shm_ring_bytes or transport=tcp");
  }
  ShmBackoff backoff;
  while (!ring.TryPush(bytes.data(), bytes.size())) {
    // Full request ring under pipelining: the daemon may itself be stuck
    // pushing responses at a full response ring, so spinning here could
    // deadlock. Draining a response into pending_ makes room on both sides;
    // ReadResponseFrame hands it out later in order.
    DBS_ASSIGN_OR_RETURN(bool popped,
                         shm_->response_ring().TryPop(&scratch_));
    if (popped) {
      size_t consumed = 0;
      DBS_ASSIGN_OR_RETURN(
          Frame frame, DecodeFrame(scratch_.data(), scratch_.size(),
                                   &consumed));
      if (consumed != scratch_.size()) {
        return Status::Internal("trailing garbage after shm frame");
      }
      pending_.push_back(std::move(frame));
      backoff.Reset();
      continue;
    }
    if (backoff.Step() && ServerClosed()) {
      return Status::IoError("connection closed");
    }
  }
  return Status::Ok();
}

Result<Frame> Client::ReadResponseFrame() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client connection is closed");
  }
  if (transport_ == TransportKind::kTcp) {
    return ReadFrame(fd_);
  }
  if (!pending_.empty()) {
    Frame frame = std::move(pending_.front());
    pending_.pop_front();
    return frame;
  }
  ShmBackoff backoff;
  for (;;) {
    DBS_ASSIGN_OR_RETURN(bool popped,
                         shm_->response_ring().TryPop(&scratch_));
    if (popped) {
      size_t consumed = 0;
      DBS_ASSIGN_OR_RETURN(
          Frame frame, DecodeFrame(scratch_.data(), scratch_.size(),
                                   &consumed));
      if (consumed != scratch_.size()) {
        return Status::Internal("trailing garbage after shm frame");
      }
      return frame;
    }
    if (backoff.Step() && ServerClosed()) {
      return Status::IoError("connection closed");
    }
  }
}

Result<Frame> Client::RoundTrip(MessageType type,
                                const std::vector<uint8_t>& payload,
                                MessageType expected_response) {
  DBS_RETURN_IF_ERROR(Submit(type, payload));
  DBS_ASSIGN_OR_RETURN(Frame response, ReadResponseFrame());
  if (response.type == MessageType::kErrorResponse) {
    return DecodeErrorResponse(response.payload);
  }
  if (response.type != expected_response) {
    return Status::Internal("unexpected response type from server");
  }
  return response;
}

Status Client::RegisterModel(const std::string& name,
                             const std::string& path) {
  RegisterRequest request{name, path};
  auto response =
      RoundTrip(MessageType::kRegisterRequest, EncodeRegisterRequest(request),
                MessageType::kOkResponse);
  return response.status();
}

Status Client::EvictModel(const std::string& name) {
  EvictRequest request{name};
  auto response =
      RoundTrip(MessageType::kEvictRequest, EncodeEvictRequest(request),
                MessageType::kOkResponse);
  return response.status();
}

Result<DensityBatchResponse> Client::Density(
    const DensityBatchRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kDensityRequest, EncodeDensityRequest(request),
                MessageType::kDensityResponse));
  return DecodeDensityResponse(response.payload);
}

Result<std::vector<DensityBatchResponse>> Client::DensityPipelined(
    const std::vector<DensityBatchRequest>& requests, int window) {
  if (window < 1) window = 1;
  // The response side (kernel socket buffers for TCP, the response ring for
  // shm) has to absorb every in-flight answer, so the window stays modest.
  if (window > 64) window = 64;

  std::vector<Frame> frames;
  frames.reserve(requests.size());
  size_t submitted = 0;
  size_t received = 0;
  while (received < requests.size()) {
    while (submitted < requests.size() &&
           submitted - received < static_cast<size_t>(window)) {
      DBS_RETURN_IF_ERROR(Submit(MessageType::kDensityRequest,
                                 EncodeDensityRequest(requests[submitted])));
      ++submitted;
    }
    DBS_ASSIGN_OR_RETURN(Frame frame, ReadResponseFrame());
    frames.push_back(std::move(frame));
    ++received;
  }

  // Convert only after every in-flight response is home, so an error in
  // the middle of the stream cannot leave orphaned responses behind on the
  // session. The first error in request order wins, matching what the
  // caller would have seen issuing the batches sequentially.
  std::vector<DensityBatchResponse> responses;
  responses.reserve(frames.size());
  for (const Frame& frame : frames) {
    if (frame.type == MessageType::kErrorResponse) {
      return DecodeErrorResponse(frame.payload);
    }
    if (frame.type != MessageType::kDensityResponse) {
      return Status::Internal("unexpected response type from server");
    }
    DBS_ASSIGN_OR_RETURN(DensityBatchResponse response,
                         DecodeDensityResponse(frame.payload));
    responses.push_back(std::move(response));
  }
  return responses;
}

Result<SampleResponse> Client::Sample(const SampleRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kSampleRequest, EncodeSampleRequest(request),
                MessageType::kSampleResponse));
  return DecodeSampleResponse(response.payload);
}

Result<OutlierScoreBatchResponse> Client::OutlierScores(
    const OutlierScoreBatchRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kOutlierRequest, EncodeOutlierRequest(request),
                MessageType::kOutlierResponse));
  return DecodeOutlierResponse(response.payload);
}

Result<density::PartialKde> Client::PartialFit(
    const PartialFitRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kPartialFitRequest,
                EncodePartialFitRequest(request),
                MessageType::kPartialFitResponse));
  return DecodePartialKde(response.payload);
}

Result<StatsResponse> Client::Stats() {
  DBS_ASSIGN_OR_RETURN(Frame response,
                       RoundTrip(MessageType::kStatsRequest, {},
                                 MessageType::kStatsResponse));
  return DecodeStatsResponse(response.payload);
}

Status Client::RequestShutdown() {
  auto response = RoundTrip(MessageType::kShutdownRequest, {},
                            MessageType::kOkResponse);
  return response.status();
}

}  // namespace dbs::serve
