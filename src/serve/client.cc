#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dbs::serve {

Result<Client> Client::Connect(uint16_t port, const std::string& host) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError(std::string("connect to ") + host + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> Client::RoundTrip(MessageType type,
                                const std::vector<uint8_t>& payload,
                                MessageType expected_response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client connection is closed");
  }
  DBS_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  DBS_ASSIGN_OR_RETURN(Frame response, ReadFrame(fd_));
  if (response.type == MessageType::kErrorResponse) {
    return DecodeErrorResponse(response.payload);
  }
  if (response.type != expected_response) {
    return Status::Internal("unexpected response type from server");
  }
  return response;
}

Status Client::RegisterModel(const std::string& name,
                             const std::string& path) {
  RegisterRequest request{name, path};
  auto response =
      RoundTrip(MessageType::kRegisterRequest, EncodeRegisterRequest(request),
                MessageType::kOkResponse);
  return response.status();
}

Status Client::EvictModel(const std::string& name) {
  EvictRequest request{name};
  auto response =
      RoundTrip(MessageType::kEvictRequest, EncodeEvictRequest(request),
                MessageType::kOkResponse);
  return response.status();
}

Result<DensityBatchResponse> Client::Density(
    const DensityBatchRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kDensityRequest, EncodeDensityRequest(request),
                MessageType::kDensityResponse));
  return DecodeDensityResponse(response.payload);
}

Result<SampleResponse> Client::Sample(const SampleRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kSampleRequest, EncodeSampleRequest(request),
                MessageType::kSampleResponse));
  return DecodeSampleResponse(response.payload);
}

Result<OutlierScoreBatchResponse> Client::OutlierScores(
    const OutlierScoreBatchRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kOutlierRequest, EncodeOutlierRequest(request),
                MessageType::kOutlierResponse));
  return DecodeOutlierResponse(response.payload);
}

Result<density::PartialKde> Client::PartialFit(
    const PartialFitRequest& request) {
  DBS_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kPartialFitRequest,
                EncodePartialFitRequest(request),
                MessageType::kPartialFitResponse));
  return DecodePartialKde(response.payload);
}

Result<StatsResponse> Client::Stats() {
  DBS_ASSIGN_OR_RETURN(Frame response,
                       RoundTrip(MessageType::kStatsRequest, {},
                                 MessageType::kStatsResponse));
  return DecodeStatsResponse(response.payload);
}

Status Client::RequestShutdown() {
  auto response = RoundTrip(MessageType::kShutdownRequest, {},
                            MessageType::kOkResponse);
  return response.status();
}

}  // namespace dbs::serve
