// Transport-agnostic execution of one decoded DBSQ request frame.
//
// Both transports — the per-connection TCP loop in serve/server.cc and the
// shared-memory drain thread in serve/shm_transport.cc — decode a frame,
// hand it here, and ship the returned response frame back the way the
// request came. Because the response bytes are produced by one dispatch
// path and one codec regardless of transport, a request stream answered
// over shm is bitwise identical to the same stream answered over TCP
// (pinned by tests/serve_shm_transport_test.cc).

#ifndef DBS_SERVE_DISPATCH_H_
#define DBS_SERVE_DISPATCH_H_

#include "serve/service.h"
#include "serve/wire.h"

namespace dbs::serve {

struct DispatchResult {
  Frame response;
  // The frame was a shutdown request; the daemon should stop accepting.
  bool shutdown = false;
  // The connection/session must end after the response is sent: a peer
  // whose payload failed to decode cannot be assumed frame-aligned anymore,
  // and a shutdown request ends its own stream by definition. Service-level
  // errors (unknown model, dimension mismatch, backpressure) do NOT set
  // this — they are normal protocol traffic.
  bool close = false;
};

// Executes one request frame against the service and encodes the response
// frame. Never fails: malformed payloads and service errors both come back
// as kErrorResponse frames, with `close` distinguishing framing violations
// from ordinary errors.
DispatchResult DispatchFrame(ModelService* service, const Frame& frame);

}  // namespace dbs::serve

#endif  // DBS_SERVE_DISPATCH_H_
