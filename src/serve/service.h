// ModelService — executes typed serving requests against registered models.
//
// This is the single implementation of request semantics, shared by the
// in-process API, the tests and the TCP daemon: the daemon only decodes
// wire frames into these structs and encodes the answers back. That is what
// pins the end-to-end guarantee — for the same request and seed, the served
// answer is bitwise identical to the direct library call, because it IS the
// direct library call (BiasedSampler::Run, DensityEstimator::Evaluate,
// BallIntegrator::IntegrateExcludingSelf), merely sharded across the
// executor's workers where per-point independence makes that exact.
//
// Every request is measured (service-side latency, point counts) into
// per-type counters surfaced by Stats() — the daemon's `stats` request.

#ifndef DBS_SERVE_SERVICE_H_
#define DBS_SERVE_SERVICE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "density/kde_partial.h"
#include "serve/batch_executor.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "util/status.h"

namespace dbs::serve {

class ModelService {
 public:
  // Neither pointer is owned; both must outlive the service.
  ModelService(ModelRegistry* registry, BatchExecutor* executor);

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  [[nodiscard]] Status Register(const RegisterRequest& request);
  [[nodiscard]] Status Evict(const EvictRequest& request);

  // Density evaluation sharded across the executor; kUnavailable under
  // backpressure.
  [[nodiscard]] Result<DensityBatchResponse> Density(const DensityBatchRequest& request);

  // Biased sampling is RNG-sequential, so it runs as a single executor task
  // (still subject to admission control).
  [[nodiscard]] Result<SampleResponse> Sample(const SampleRequest& request);

  // Outlier scoring sharded across the executor.
  [[nodiscard]] Result<OutlierScoreBatchResponse> OutlierScores(
      const OutlierScoreBatchRequest& request);

  // One shard of a distributed KDE build (DESIGN.md §12): streams the
  // shard's slice of the server-side .dbsf dataset through Kde::FitPartial
  // and returns the mergeable state. Sequential like Sample (the reservoir
  // consumes an RNG stream), so it runs as one admission-controlled task.
  [[nodiscard]] Result<density::PartialKde> PartialFit(const PartialFitRequest& request);

  StatsResponse Stats() const;

  ModelRegistry* registry() { return registry_; }

 private:
  // Number of recent latencies kept per type for the percentile estimates.
  static constexpr int kLatencyWindow = 1024;

  struct TypeStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t points = 0;
    double latency_sum_us = 0.0;
    double latency_min_us = 0.0;
    double latency_max_us = 0.0;
    // Ring buffer of recent latencies (microseconds).
    std::vector<double> recent;
    int64_t next_slot = 0;
  };

  void Record(RequestType type, bool ok, int64_t num_points,
              double latency_us);

  ModelRegistry* registry_;
  BatchExecutor* executor_;

  // Guards stats_ only; taken after all request work is done. Leaf lock,
  // never held across registry or executor calls.
  mutable std::mutex stats_mu_;
  std::map<RequestType, TypeStats> stats_;
};

}  // namespace dbs::serve

#endif  // DBS_SERVE_SERVICE_H_
