// The weighted-sample type produced by the biased samplers.
//
// Besides the sampled points, a BiasedSample records each point's inclusion
// probability and estimated local density. The inverse inclusion
// probabilities are the weights §3.1 prescribes when feeding the sample to
// algorithms that optimize per-point criteria (k-means/k-medoids): weighting
// by 1/p_i makes the weighted sample an unbiased (Horvitz–Thompson)
// estimator of dataset-level sums.

#ifndef DBS_CORE_SAMPLE_H_
#define DBS_CORE_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "data/point_set.h"

namespace dbs::core {

struct BiasedSample {
  data::PointSet points;
  // Per sampled point: the probability with which it was included.
  std::vector<double> inclusion_probs;
  // Per sampled point: the density estimate f(x) that drove its inclusion.
  std::vector<double> densities;

  // The normalizer k_a = sum_x f'(x) actually used (exact for the two-pass
  // sampler, estimated for the one-pass variant).
  double normalizer = 0.0;
  // Size of the dataset the sample was drawn from.
  int64_t dataset_size = 0;
  // How many points had their inclusion probability clamped at 1. A large
  // fraction signals that target_size or |a| is too aggressive for the
  // density profile.
  int64_t clamped_count = 0;

  int64_t size() const { return points.size(); }

  // Horvitz–Thompson weights, 1 / inclusion_prob per point.
  std::vector<double> Weights() const;

  // Sum of weights; an unbiased estimate of the dataset size (useful as a
  // quick sanity check on the sample).
  double EstimatedDatasetSize() const;
};

}  // namespace dbs::core

#endif  // DBS_CORE_SAMPLE_H_
