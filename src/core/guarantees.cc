#include "core/guarantees.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbs::core {
namespace {

double LogBinomialCoefficient(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

}  // namespace

double GuhaUniformSampleSize(int64_t n, int64_t cluster_size, double xi,
                             double delta) {
  DBS_CHECK(n > 0 && cluster_size > 0 && cluster_size <= n);
  DBS_CHECK(xi >= 0 && xi <= 1);
  DBS_CHECK(delta > 0 && delta < 1);
  double dn = static_cast<double>(n);
  double du = static_cast<double>(cluster_size);
  double log_term = std::log(1.0 / delta);
  return xi * dn + dn / du * log_term +
         dn / du *
             std::sqrt(log_term * log_term + 2.0 * xi * du * log_term);
}

double BinomialTailGE(int64_t k_min, int64_t trials, double p) {
  DBS_CHECK(trials >= 0);
  if (k_min <= 0) return 1.0;
  if (k_min > trials) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double log_p = std::log(p);
  double log_q = std::log1p(-p);
  // Sum the smaller tail in log space for stability, then complement if
  // needed.
  double mean = static_cast<double>(trials) * p;
  bool sum_upper = static_cast<double>(k_min) > mean;
  double total = 0.0;
  if (sum_upper) {
    for (int64_t k = k_min; k <= trials; ++k) {
      double log_term = LogBinomialCoefficient(trials, k) +
                        static_cast<double>(k) * log_p +
                        static_cast<double>(trials - k) * log_q;
      total += std::exp(log_term);
    }
    return std::min(total, 1.0);
  }
  for (int64_t k = 0; k < k_min; ++k) {
    double log_term = LogBinomialCoefficient(trials, k) +
                      static_cast<double>(k) * log_p +
                      static_cast<double>(trials - k) * log_q;
    total += std::exp(log_term);
  }
  return std::max(0.0, 1.0 - std::min(total, 1.0));
}

double UniformCaptureProbability(int64_t n, int64_t cluster_size, double xi,
                                 double sample_size) {
  DBS_CHECK(n > 0 && cluster_size > 0 && cluster_size <= n);
  double rate = std::min(1.0, sample_size / static_cast<double>(n));
  int64_t k_min = static_cast<int64_t>(
      std::ceil(xi * static_cast<double>(cluster_size)));
  return BinomialTailGE(k_min, cluster_size, rate);
}

double MinUniformSampleSize(int64_t n, int64_t cluster_size, double xi,
                            double delta) {
  DBS_CHECK(delta > 0 && delta < 1);
  double lo = 0.0;
  double hi = static_cast<double>(n);
  // Capture probability is monotone nondecreasing in the sample size.
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (UniformCaptureProbability(n, cluster_size, xi, mid) >= 1.0 - delta) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double BiasedCaptureProbability(int64_t cluster_size, double xi, double p) {
  int64_t k_min = static_cast<int64_t>(
      std::ceil(xi * static_cast<double>(cluster_size)));
  return BinomialTailGE(k_min, cluster_size, p);
}

double MinBiasedInclusionProbability(int64_t cluster_size, double xi,
                                     double delta) {
  DBS_CHECK(delta > 0 && delta < 1);
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (BiasedCaptureProbability(cluster_size, xi, mid) >= 1.0 - delta) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double BiasedRuleExpectedSampleSize(int64_t n, int64_t cluster_size, double p,
                                    double out_rate) {
  DBS_CHECK(n > 0 && cluster_size > 0 && cluster_size <= n);
  return p * static_cast<double>(cluster_size) +
         out_rate * static_cast<double>(n - cluster_size);
}

double RuleRCrossoverP(int64_t n, int64_t cluster_size,
                       double uniform_sample_size) {
  DBS_CHECK(n > 0 && cluster_size > 0 && cluster_size <= n);
  // Solve p*u + (1-p)*(n-u) <= s for p. The left side decreases in p when
  // n > 2u; otherwise the rule cannot undercut s for s < u.
  double du = static_cast<double>(cluster_size);
  double dn = static_cast<double>(n);
  double denom = dn - 2.0 * du;
  if (denom <= 0) return 1.0;
  double p = (dn - du - uniform_sample_size) / denom;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace dbs::core
