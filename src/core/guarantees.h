// Sample-size calculus for cluster preservation (paper §1.1 and Theorem 1).
//
// A cluster u "is included" in a sample when at least xi*|u| of its points
// survive into the sample (0 <= xi <= 1). Guha et al. give a Chernoff-style
// bound on the uniform sample size s needed to make the failure probability
// at most delta:
//
//   s >= xi*n + (n/|u|)*log(1/delta)
//          + (n/|u|)*sqrt(log(1/delta)^2 + 2*xi*|u|*log(1/delta)).
//
// The worked example in §1.1: capture xi=0.2 of a |u|=1000 cluster with 90%
// confidence -> 25% of the dataset must be sampled, whatever n is.
//
// Theorem 1 contrasts this with the biased rule R (include cluster points
// with probability p, others with probability 1-p): biased sampling needs a
// smaller sample exactly when p >= |u|/n. The functions below provide the
// paper's closed-form bound, the exact binomial machinery to evaluate both
// schemes without the bound's slack, and the rule-R bookkeeping the
// theorem-1 bench table uses.

#ifndef DBS_CORE_GUARANTEES_H_
#define DBS_CORE_GUARANTEES_H_

#include <cstdint>

namespace dbs::core {

// Guha et al.'s closed-form uniform sample size (the formula above).
double GuhaUniformSampleSize(int64_t n, int64_t cluster_size, double xi,
                             double delta);

// Exact P[Binomial(trials, p) >= k_min], computed in log space.
double BinomialTailGE(int64_t k_min, int64_t trials, double p);

// Probability that Bernoulli-rate uniform sampling of expected size s from
// a dataset of n captures >= xi*|u| points of cluster u. (Each cluster
// point survives independently with probability s/n.)
double UniformCaptureProbability(int64_t n, int64_t cluster_size, double xi,
                                 double sample_size);

// Smallest expected uniform sample size whose capture probability reaches
// 1 - delta (exact, by binary search; always <= the Guha bound).
double MinUniformSampleSize(int64_t n, int64_t cluster_size, double xi,
                            double delta);

// Probability that rule R (cluster points kept with probability p) captures
// >= xi*|u| cluster points: P[Binomial(|u|, p) >= ceil(xi*|u|)].
double BiasedCaptureProbability(int64_t cluster_size, double xi, double p);

// Smallest p for which BiasedCaptureProbability reaches 1 - delta.
double MinBiasedInclusionProbability(int64_t cluster_size, double xi,
                                     double delta);

// Expected sample size of rule R: p*|u| + out_rate*(n - |u|). Theorem 1's
// rule uses out_rate = 1 - p; practical density-biased sampling drives
// out_rate far lower, which is where the savings come from.
double BiasedRuleExpectedSampleSize(int64_t n, int64_t cluster_size, double p,
                                    double out_rate);

// Under the literal theorem-1 rule (out_rate = 1 - p), the smallest p at
// which the rule's expected sample size drops to `uniform_sample_size`.
// Requires n > 2*|u| (otherwise the rule can never be smaller and the
// function returns 1).
double RuleRCrossoverP(int64_t n, int64_t cluster_size,
                       double uniform_sample_size);

}  // namespace dbs::core

#endif  // DBS_CORE_GUARANTEES_H_
