// Fully-streaming density-biased sampling — one pass, no pre-fitted
// estimator (the §2.2 integration the paper defers to its full version:
// "it is possible to integrate both steps in one, thus deriving the biased
// sample in a single pass over the database; in this case however we only
// compute an approximation of the sampling probability").
//
// The sampler maintains, while scanning:
//   * a reservoir of kernel centers and running per-dimension moments,
//     from which the current KDE is derived (bandwidths refresh as the
//     moments evolve);
//   * a running estimate of E[f^a] over the points seen, giving the
//     normalizer estimate k_a ~= n * E[f^a] (n comes from scan metadata).
//
// Points seen during the warmup prefix are included uniformly at rate b/n
// (the estimator is too immature to bias with); after warmup each point is
// scored against the current estimator and included with the usual
// min(1, b/k_a * f^a). The recorded inclusion probabilities are the ones
// actually used, so Horvitz-Thompson weighting remains exactly valid even
// though the probabilities only approximate the offline sampler's.
//
// Accuracy/cost: exactly ONE pass (vs two or three for fit + normalize +
// sample); the sample size approximates b with error driven by the warmup
// fraction and the normalizer drift. tests/core_streaming_test.cc bounds
// both.
//
// ORDERING ASSUMPTION: the stream must be (approximately) exchangeable —
// arrival order independent of position in space. On a stream sorted by
// cluster, every point is scored while its own region is still
// under-represented in the prefix estimator, which deflates all scores
// relative to the running normalizer and shrinks the sample well below b
// (tests/core_streaming_test.cc demonstrates the effect). Shuffle such
// data, or fall back to the two-pass BiasedSampler.

#ifndef DBS_CORE_STREAMING_SAMPLER_H_
#define DBS_CORE_STREAMING_SAMPLER_H_

#include <cstdint>

#include "core/sample.h"
#include "data/dataset.h"
#include "density/bandwidth.h"
#include "density/kernel.h"
#include "parallel/batch_executor.h"
#include "util/status.h"

namespace dbs::core {

struct StreamingSamplerOptions {
  // The density exponent `a`.
  double a = 1.0;
  // Expected sample size b.
  int64_t target_size = 1000;
  // Kernel-center reservoir capacity.
  int64_t num_kernels = 1000;
  density::KernelType kernel = density::KernelType::kEpanechnikov;
  // Multiplier on the Scott-rule bandwidths (see density::KdeOptions).
  double bandwidth_scale = 1.0;
  // Warmup prefix: points sampled uniformly while the estimator matures,
  // as a fraction of the scan (at least num_kernels points).
  double warmup_fraction = 0.05;
  // Density floor, as a fraction of the running average density.
  double density_floor_fraction = 1e-3;
  uint64_t seed = 1;
  // Post-warmup points are scored in windows of this many points. The whole
  // window is evaluated against the reservoir estimator FROZEN at the
  // window start — one batched DensityEstimator::EvaluateBatch call,
  // shardable across `executor` — then a single sequential sweep draws the
  // inclusion decisions and absorbs the window into the reservoir, with the
  // bandwidth rebuild paid once per window instead of once per point. 1
  // reproduces the historical point-at-a-time behavior byte-for-byte (the
  // frozen estimator then IS each point's exact prefix estimator); larger
  // windows trade scoring staleness for batching, and sample quality is
  // insensitive to the knob (tests/core_streaming_test.cc bounds it).
  int64_t rebuild_cadence = 1;
  // Optional executor sharding the window's density evaluations. Samples
  // are byte-identical with or without it (and for any worker count): the
  // batched evaluation is per-point independent, and all RNG draws happen
  // in the one sequential sweep — the same pattern BiasedSampler uses.
  // Falls back to sequential evaluation under queue backpressure.
  parallel::BatchExecutor* executor = nullptr;
};

// Draws the biased sample in a single pass over `scan`.
[[nodiscard]] Result<BiasedSample> StreamingBiasedSample(
    data::DataScan& scan, const StreamingSamplerOptions& options);

[[nodiscard]] Result<BiasedSample> StreamingBiasedSample(
    const data::PointSet& points, const StreamingSamplerOptions& options);

}  // namespace dbs::core

#endif  // DBS_CORE_STREAMING_SAMPLER_H_
