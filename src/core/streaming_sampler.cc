#include "core/streaming_sampler.h"

#include <algorithm>
#include <cmath>

#include "data/bounds.h"
#include "density/density_estimator.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::core {
namespace {

// Incremental product-kernel density estimate over a center reservoir.
// Evaluation is brute force over at most `capacity` centers — the same
// asymptotic cost per point as the offline sampling pass. Deriving from
// DensityEstimator gives the sampler the batched (executor-shardable)
// EvaluateBatch path over a frozen reservoir state for free.
class StreamingKde final : public density::DensityEstimator {
 public:
  StreamingKde(int dim, int64_t capacity, density::KernelType kernel,
               double bandwidth_scale, uint64_t seed)
      : dim_(dim),
        capacity_(capacity),
        kernel_(kernel),
        bandwidth_scale_(bandwidth_scale),
        centers_(dim),
        moments_(dim),
        rng_(seed) {}

  int dim() const override { return dim_; }

  // The estimate is unit-mass (integrates to ~1, see Evaluate), so the
  // "approximate integral of Evaluate over the domain" the interface asks
  // for is 1, not the points seen.
  int64_t total_mass() const override { return 1; }

  // Offers a point to the center reservoir and updates the moments. The
  // bandwidth refresh — the "rebuild" the cadence knob amortizes — can be
  // deferred: moments/reservoir/bounds updates are per point regardless,
  // and Evaluate only reads the bandwidths, so refreshing once after a run
  // of Observes yields the same bandwidths as refreshing on every one.
  void Observe(data::PointView p, bool refresh_bandwidths = true) {
    bounds_.Extend(p);
    for (int j = 0; j < dim_; ++j) moments_[j].Add(p[j]);
    if (seen_ < capacity_) {
      centers_.Append(p);
    } else {
      int64_t slot = static_cast<int64_t>(
          rng_.NextBounded(static_cast<uint64_t>(seen_ + 1)));
      if (slot < capacity_) {
        double* dst = centers_.MutableRow(slot);
        for (int j = 0; j < dim_; ++j) dst[j] = p[j];
      }
    }
    ++seen_;
    if (refresh_bandwidths) RefreshBandwidths();
  }

  int64_t seen() const { return seen_; }

  // UNIT-MASS density estimate (integrates to ~1 over the domain). The
  // mass-scaled estimate would grow with the number of points seen, which
  // would make the running normalizer systematically lag the scores of
  // later points; the unit-mass estimate is scale-stationary across the
  // stream, so the b/k_a * f^a expression stays consistent (any common
  // scale cancels between numerator and normalizer anyway).
  double Evaluate(data::PointView p) const override {
    DBS_DCHECK(!centers_.empty());
    double sum = 0.0;
    for (int64_t i = 0; i < centers_.size(); ++i) {
      const double* c = centers_[i].data();
      double prod = 1.0;
      for (int j = 0; j < dim_; ++j) {
        double u = (p[j] - c[j]) * inv_h_[j];
        double k = density::KernelValue(kernel_, u);
        if (k == 0.0) {
          prod = 0.0;
          break;
        }
        prod *= k;
      }
      sum += prod;
    }
    return inv_h_prod_ * sum / static_cast<double>(centers_.size());
  }

  // Average unit-mass density of the domain seen so far (1 / volume).
  double AverageDensity() const override {
    double volume = bounds_.Volume();
    return volume > 0 ? 1.0 / volume : 1.0;
  }

 private:
  void RefreshBandwidths() {
    std::vector<double> sigma(dim_);
    for (int j = 0; j < dim_; ++j) sigma[j] = moments_[j].sample_stddev();
    std::vector<double> h = density::ComputeBandwidths(
        density::BandwidthRule::kScott, kernel_, sigma,
        std::max<int64_t>(centers_.size(), 1), 0.0);
    inv_h_.resize(dim_);
    inv_h_prod_ = 1.0;
    for (int j = 0; j < dim_; ++j) {
      h[j] *= bandwidth_scale_;
      inv_h_[j] = 1.0 / h[j];
      inv_h_prod_ *= inv_h_[j];
    }
  }

  int dim_;
  int64_t capacity_;
  density::KernelType kernel_;
  double bandwidth_scale_;
  data::PointSet centers_;
  std::vector<OnlineMoments> moments_;
  data::BoundingBox bounds_;
  std::vector<double> inv_h_;
  double inv_h_prod_ = 1.0;
  int64_t seen_ = 0;
  Rng rng_;
};

}  // namespace

[[nodiscard]] Result<BiasedSample> StreamingBiasedSample(
    data::DataScan& scan, const StreamingSamplerOptions& options) {
  if (options.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (options.num_kernels <= 0) {
    return Status::InvalidArgument("num_kernels must be positive");
  }
  if (options.warmup_fraction < 0 || options.warmup_fraction >= 1) {
    return Status::InvalidArgument("warmup_fraction must be in [0, 1)");
  }
  if (options.bandwidth_scale <= 0) {
    return Status::InvalidArgument("bandwidth_scale must be positive");
  }
  if (options.rebuild_cadence <= 0) {
    return Status::InvalidArgument("rebuild_cadence must be positive");
  }
  const int dim = scan.dim();
  const int64_t n = scan.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }

  const int64_t warmup = std::max<int64_t>(
      options.num_kernels,
      static_cast<int64_t>(options.warmup_fraction *
                           static_cast<double>(n)));
  const double b = static_cast<double>(options.target_size);
  const double uniform_rate = std::min(1.0, b / static_cast<double>(n));

  StreamingKde kde(dim, options.num_kernels, options.kernel,
                   options.bandwidth_scale, options.seed);
  Rng rng = Rng(options.seed).Fork(1);

  BiasedSample sample;
  sample.points = data::PointSet(dim);
  sample.dataset_size = n;
  sample.points.Reserve(options.target_size + options.target_size / 4);

  // Running mean of f^a over scored points -> normalizer k_a ~= n * mean.
  OnlineMoments fa_moments;

  // Post-warmup points collect into a window of `rebuild_cadence` points
  // that is scored as one batch against the reservoir estimator FROZEN at
  // the window start, then swept sequentially (every RNG draw and
  // normalizer update happens in the sweep, in stream order — the
  // BiasedSampler one-sequential-RNG-sweep pattern, so samples are
  // byte-identical for any worker count). At cadence 1 the frozen estimator
  // is each point's exact prefix estimator and the flow reproduces the old
  // per-point loop byte-for-byte: evaluate, floor, decide, then Observe.
  data::PointSet window(dim);
  std::vector<double> window_f;
  auto flush_window = [&]() {
    const int64_t w = window.size();
    if (w == 0) return;
    window_f.resize(static_cast<size_t>(w));
    Status batched = kde.EvaluateBatch(window.flat().data(), w,
                                       window_f.data(), options.executor);
    if (!batched.ok()) {
      // Executor backpressure: the sequential batch path cannot fail and
      // produces the identical values.
      (void)kde.EvaluateBatch(window.flat().data(), w, window_f.data(),
                              nullptr);
    }
    // Floor and f_unit are frozen at the window start by construction.
    const double floor =
        options.density_floor_fraction * kde.AverageDensity();
    for (int64_t i = 0; i < w; ++i) {
      const double f_unit = window_f[static_cast<size_t>(i)];
      double fa = SafePow(std::max(f_unit, floor), options.a);
      fa_moments.Add(fa);
      double k_a = static_cast<double>(n) * fa_moments.mean();
      double p = k_a > 0 ? b / k_a * fa : uniform_rate;
      if (p >= 1.0) {
        p = 1.0;
        ++sample.clamped_count;
      }
      if (rng.NextBernoulli(p)) {
        sample.points.Append(window[i]);
        sample.inclusion_probs.push_back(p);
        // Report the mass-scaled density (points per unit volume).
        sample.densities.push_back(f_unit * static_cast<double>(n));
      }
    }
    // Absorb the window in stream order; the bandwidth rebuild — the
    // expensive part of Observe — is paid once per window, on the last
    // point. The reservoir RNG consumes one draw per point either way, so
    // the reservoir stream is cadence-independent.
    for (int64_t i = 0; i < w; ++i) {
      kde.Observe(window[i], /*refresh_bandwidths=*/i + 1 == w);
    }
    window.Clear();
  };

  scan.Reset();
  data::ScanBatch batch;
  int64_t row = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i, ++row) {
      data::PointView x = batch.point(i, dim);
      if (row < warmup) {
        kde.Observe(x);
        // Uniform inclusion while the estimator matures.
        if (rng.NextBernoulli(uniform_rate)) {
          sample.points.Append(x);
          sample.inclusion_probs.push_back(uniform_rate);
          sample.densities.push_back(0.0);
        }
        continue;
      }
      window.Append(x);
      if (window.size() >= options.rebuild_cadence) flush_window();
    }
  }
  flush_window();
  sample.normalizer =
      fa_moments.count() > 0
          ? static_cast<double>(n) * fa_moments.mean()
          : static_cast<double>(n);
  return sample;
}

[[nodiscard]] Result<BiasedSample> StreamingBiasedSample(
    const data::PointSet& points, const StreamingSamplerOptions& options) {
  data::InMemoryScan scan(&points);
  return StreamingBiasedSample(scan, options);
}

}  // namespace dbs::core
