// Density-biased sampling — the paper's primary contribution (Fig 1, §2.2).
//
// Given a density estimator f for a dataset D of n points and a tunable
// exponent `a`, each point x is included in the sample with probability
//
//   P(x) = min(1, (b / k_a) * f(x)^a),   k_a = sum_{x in D} f(x)^a,
//
// which satisfies the paper's two properties: inclusion probability is a
// function of local density only (Property 1) and the expected sample size
// is b (Property 2, exactly when nothing clamps at 1). The exponent selects
// the sampling regime:
//
//   a > 0    oversample dense regions (robust to noise; a = 1 samples
//            proportionally to the density itself),
//   a = 0    uniform sampling,
//   -1 < a < 0  oversample sparse regions while keeping relative densities
//            intact with high probability (Lemma 1) — finds small or sparse
//            clusters next to dominant ones,
//   a = -1   equal expected mass in equal volumes ("flattens" the density),
//   a < -1   inverts the density ordering (sparse regions dominate; the
//            regime outlier hunting would use).
//
// Two execution modes over a DataScan:
//   Run       two passes — an exact normalization pass for k_a, then the
//             sampling pass (this is the paper's Figure-1 algorithm).
//   RunOnePass one pass — k_a is estimated as n * E[f^a] from the KDE's
//             kernel centers (which are themselves a uniform sample of D),
//             the integrated variant sketched at the end of §2.2. The
//             sample size then only approximates b.
//
// Zero-density points: a point can sit outside the support of every kernel
// (f(x) = 0), which would make f^a undefined for a <= 0. The sampler floors
// the density at density_floor_fraction * AverageDensity(), so such points
// get the MAXIMAL boost under negative `a` instead of being dropped, and
// that boost is bounded: with the default floor of 1e-3 of the average
// density, a fully isolated point weighs at most 1000^(-a) times an
// average-density point. Lower the floor to chase extreme isolation harder,
// raise it to damp the influence of empty space.

#ifndef DBS_CORE_BIASED_SAMPLER_H_
#define DBS_CORE_BIASED_SAMPLER_H_

#include <cstdint>

#include <vector>

#include "core/sample.h"
#include "data/dataset.h"
#include "density/density_estimator.h"
#include "density/kde.h"
#include "util/shard.h"
#include "util/status.h"

namespace dbs::core {

// One shard's contribution to the exact normalization pass: the sequential
// sum of f'(x) over the shard's rows, in scan order.
struct NormalizerShardPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
  int64_t rows = 0;
  double k_a = 0.0;
};

// Mergeable partial state of the sampler's k_a pass (DESIGN.md §12). Merging
// is a disjoint union; the floating-point sum happens once, in ascending
// shard order, at FinalizeNormalizer time.
struct PartialNormalizer {
  std::vector<NormalizerShardPart> parts;
};

// One shard's contribution to the sampling pass: the rows the shard's
// Bernoulli sweep accepted, with their inclusion probabilities and density
// estimates, in scan order.
struct SampleShardPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
  int64_t rows = 0;
  data::PointSet points;
  std::vector<double> inclusion_probs;
  std::vector<double> densities;
  int64_t clamped_count = 0;
};

// Mergeable partial state of the sampling pass; FinalizeSample concatenates
// the complete set in ascending shard order.
struct PartialSample {
  std::vector<SampleShardPart> parts;
};

[[nodiscard]] Result<PartialNormalizer> MergePartialNormalizers(PartialNormalizer a,
                                                  PartialNormalizer b);
[[nodiscard]] Result<PartialSample> MergePartialSamples(PartialSample a, PartialSample b);

struct BiasedSamplerOptions {
  // The density exponent `a`.
  double a = 1.0;
  // Expected sample size b.
  int64_t target_size = 1000;
  // Density floor, as a fraction of the estimator's average density (see
  // header comment).
  double density_floor_fraction = 1e-3;
  uint64_t seed = 1;
  // Optional worker pool (not owned; must outlive the sampler run). When
  // set, each scan batch's densities are computed through the estimator's
  // sharded EvaluateBatch — the expensive, per-point-independent part —
  // while the Bernoulli draws stay one sequential RNG sweep over the
  // precomputed densities. Samples are therefore BITWISE IDENTICAL for a
  // fixed seed whether the pool has 1 or N workers, or is absent. A full
  // executor queue surfaces as kUnavailable from Run/RunOnePass.
  parallel::BatchExecutor* executor = nullptr;
};

class BiasedSampler {
 public:
  explicit BiasedSampler(const BiasedSamplerOptions& options);

  // Two-pass exact algorithm (paper Fig 1). `estimator` must have been
  // fitted on the same data. Any DensityEstimator works.
  [[nodiscard]] Result<BiasedSample> Run(data::DataScan& scan,
                           const density::DensityEstimator& estimator) const;

  [[nodiscard]] Result<BiasedSample> Run(const data::PointSet& points,
                           const density::DensityEstimator& estimator) const;

  // One-pass integrated variant; requires a Kde (the normalizer estimate
  // comes from its kernel centers).
  [[nodiscard]] Result<BiasedSample> RunOnePass(data::DataScan& scan,
                                  const density::Kde& kde) const;

  [[nodiscard]] Result<BiasedSample> RunOnePass(const data::PointSet& points,
                                  const density::Kde& kde) const;

  // The inclusion probability the sampler would assign to density value f
  // given normalizer k_a (exposed for analysis and tests).
  double InclusionProbability(double density, double normalizer) const;

  // Sharded partial pipeline (DESIGN.md §12). `scan` must cover exactly the
  // rows of ShardRowRange(info.total_rows, info.num_shards, info.shard);
  // wrap the full dataset in a data::RangeScan. Run is implemented as the
  // num_shards == 1 instance of these, which pins the shards=1 path bitwise
  // identical to the historical two-pass algorithm.
  [[nodiscard]] Result<PartialNormalizer> NormalizerPartial(
      data::DataScan& scan, const density::DensityEstimator& estimator,
      const ShardInfo& info) const;
  // Reduces a COMPLETE normalizer state to k_a (ascending shard order).
  [[nodiscard]] Result<double> FinalizeNormalizer(const PartialNormalizer& partial) const;
  // Sampling pass over one shard with the shard-seeded Bernoulli stream.
  [[nodiscard]] Result<PartialSample> SamplePartial(
      data::DataScan& scan, const density::DensityEstimator& estimator,
      double normalizer, const ShardInfo& info) const;
  // Concatenates a COMPLETE sample state in ascending shard order.
  [[nodiscard]] Result<BiasedSample> FinalizeSample(PartialSample partial,
                                      double normalizer) const;

 private:
  [[nodiscard]] Result<BiasedSample> SampleWithNormalizer(
      data::DataScan& scan, const density::DensityEstimator& estimator,
      double normalizer) const;

  double FlooredDensityPow(double f, double floor) const;

  BiasedSamplerOptions options_;
};

}  // namespace dbs::core

#endif  // DBS_CORE_BIASED_SAMPLER_H_
