// Practitioner's-guide presets (paper §4.4).
//
// The experimental evaluation distills into a handful of defaults; this
// header encodes them so applications can ask for a configuration by intent
// instead of hand-picking exponents.

#ifndef DBS_CORE_TUNING_H_
#define DBS_CORE_TUNING_H_

#include <cstdint>

#include "core/biased_sampler.h"

namespace dbs::core {

enum class SamplingGoal {
  // Dense clusters under heavy noise: oversample dense regions (a = 1).
  kDenseClustersUnderNoise = 0,
  // Moderate noise: a = 0.5 still favors dense regions but keeps more of
  // the mid-density mass (paper Fig 6).
  kDenseClustersLightNoise,
  // Very small or sparse clusters, little noise expected: a = -0.5.
  kSmallSparseClusters,
  // Clusters of mixed densities with some noise: a = -0.25 balances both.
  kMixedDensityClusters,
  // Equal expected mass everywhere (a = -1): flattens the density.
  kFlattenDensity,
  // Degenerate to uniform sampling (a = 0).
  kUniform,
};

// The exponent §4 found best for each goal.
double RecommendedExponent(SamplingGoal goal);

// §4.4: 1000 kernels estimate the density accurately across the evaluated
// datasets.
int64_t RecommendedNumKernels();

// §4.4: a biased sample of 1% of the dataset balances accuracy and cost.
double RecommendedSampleFraction();

// Assembles full sampler options for a goal over a dataset of size n (the
// target size is the recommended fraction, floored at 500 points so tiny
// datasets still produce usable samples).
BiasedSamplerOptions RecommendedOptions(SamplingGoal goal, int64_t dataset_size,
                                        uint64_t seed);

// Short human-readable label for reports.
const char* SamplingGoalName(SamplingGoal goal);

}  // namespace dbs::core

#endif  // DBS_CORE_TUNING_H_
