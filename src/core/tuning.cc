#include "core/tuning.h"

#include <algorithm>

namespace dbs::core {

double RecommendedExponent(SamplingGoal goal) {
  switch (goal) {
    case SamplingGoal::kDenseClustersUnderNoise:
      return 1.0;
    case SamplingGoal::kDenseClustersLightNoise:
      return 0.5;
    case SamplingGoal::kSmallSparseClusters:
      return -0.5;
    case SamplingGoal::kMixedDensityClusters:
      return -0.25;
    case SamplingGoal::kFlattenDensity:
      return -1.0;
    case SamplingGoal::kUniform:
      return 0.0;
  }
  return 0.0;
}

int64_t RecommendedNumKernels() { return 1000; }

double RecommendedSampleFraction() { return 0.01; }

BiasedSamplerOptions RecommendedOptions(SamplingGoal goal,
                                        int64_t dataset_size, uint64_t seed) {
  BiasedSamplerOptions options;
  options.a = RecommendedExponent(goal);
  options.target_size = std::max<int64_t>(
      500, static_cast<int64_t>(RecommendedSampleFraction() *
                                static_cast<double>(dataset_size)));
  options.seed = seed;
  return options;
}

const char* SamplingGoalName(SamplingGoal goal) {
  switch (goal) {
    case SamplingGoal::kDenseClustersUnderNoise:
      return "dense-clusters-under-noise";
    case SamplingGoal::kDenseClustersLightNoise:
      return "dense-clusters-light-noise";
    case SamplingGoal::kSmallSparseClusters:
      return "small-sparse-clusters";
    case SamplingGoal::kMixedDensityClusters:
      return "mixed-density-clusters";
    case SamplingGoal::kFlattenDensity:
      return "flatten-density";
    case SamplingGoal::kUniform:
      return "uniform";
  }
  return "unknown";
}

}  // namespace dbs::core
