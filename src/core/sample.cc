#include "core/sample.h"

#include "util/check.h"

namespace dbs::core {

std::vector<double> BiasedSample::Weights() const {
  std::vector<double> weights;
  weights.reserve(inclusion_probs.size());
  for (double p : inclusion_probs) {
    DBS_CHECK_MSG(p > 0, "sampled point must have positive inclusion prob");
    weights.push_back(1.0 / p);
  }
  return weights;
}

double BiasedSample::EstimatedDatasetSize() const {
  double sum = 0.0;
  for (double p : inclusion_probs) {
    if (p > 0) sum += 1.0 / p;
  }
  return sum;
}

}  // namespace dbs::core
