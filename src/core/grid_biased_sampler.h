// Grid-based density-biased sampling — the Palmer–Faloutsos comparator.
//
// Reimplementation of the sampler of [22] (SIGMOD 2000) on top of the
// hashed-grid summary (density::GridDensity). With groups = grid cells of
// sizes n_g, the method draws an expected b points overall with the
// expected count from group g proportional to n_g^e:
//
//   P(x in cell g is included) = b * n_g^(e-1) / sum_h n_h^e.
//
// e = 1 is uniform sampling; e = 0 gives every occupied cell the same
// expected count; e < 0 oversamples sparse cells even more aggressively.
// The paper's Fig 5(c) runs this method with e = -0.5 as the prior-work
// baseline. Hash collisions merge cells, which distorts n_g exactly as in
// the original (the effect the paper's comparison highlights).

#ifndef DBS_CORE_GRID_BIASED_SAMPLER_H_
#define DBS_CORE_GRID_BIASED_SAMPLER_H_

#include <cstdint>

#include "core/sample.h"
#include "data/dataset.h"
#include "density/grid_density.h"
#include "util/status.h"

namespace dbs::core {

struct GridBiasedSamplerOptions {
  // Group-size exponent e (1 = uniform; the paper's comparison uses -0.5).
  double e = -0.5;
  // Expected sample size b.
  int64_t target_size = 1000;
  uint64_t seed = 1;
};

class GridBiasedSampler {
 public:
  explicit GridBiasedSampler(const GridBiasedSamplerOptions& options);

  // One sampling pass; `grid` must have been fitted on the same data.
  [[nodiscard]] Result<BiasedSample> Run(data::DataScan& scan,
                           const density::GridDensity& grid) const;

  [[nodiscard]] Result<BiasedSample> Run(const data::PointSet& points,
                           const density::GridDensity& grid) const;

 private:
  GridBiasedSamplerOptions options_;
};

}  // namespace dbs::core

#endif  // DBS_CORE_GRID_BIASED_SAMPLER_H_
