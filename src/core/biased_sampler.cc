#include "core/biased_sampler.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/math.h"
#include "util/rng.h"

namespace dbs::core {

BiasedSampler::BiasedSampler(const BiasedSamplerOptions& options)
    : options_(options) {}

double BiasedSampler::FlooredDensityPow(double f, double floor) const {
  return SafePow(std::max(f, floor), options_.a);
}

double BiasedSampler::InclusionProbability(double density,
                                           double normalizer) const {
  if (normalizer <= 0) return 0.0;
  double fa = SafePow(density, options_.a);
  return std::min(1.0, static_cast<double>(options_.target_size) /
                           normalizer * fa);
}

Result<BiasedSample> BiasedSampler::Run(
    data::DataScan& scan, const density::DensityEstimator& estimator) const {
  // The two-pass algorithm is the single-shard instance of the partial
  // pipeline (DESIGN.md §12): pass 1 is NormalizerPartial over the whole
  // range, pass 2 SampleWithNormalizer — so the sharded path at shards=1 is
  // this function, bitwise.
  ShardInfo info;
  info.total_rows = scan.size();
  DBS_ASSIGN_OR_RETURN(PartialNormalizer partial,
                       NormalizerPartial(scan, estimator, info));
  DBS_ASSIGN_OR_RETURN(double k_a, FinalizeNormalizer(partial));
  if (k_a <= 0) {
    return Status::Internal("normalizer k_a is not positive");
  }
  return SampleWithNormalizer(scan, estimator, k_a);
}

Result<PartialNormalizer> BiasedSampler::NormalizerPartial(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const ShardInfo& info) const {
  if (options_.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  if (info.total_rows == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  DBS_RETURN_IF_ERROR(ValidateShardInfo(info));
  if (scan.size() !=
      ShardRowRange(info.total_rows, info.num_shards, info.shard).size()) {
    return Status::InvalidArgument(
        "scan does not cover the shard's row range");
  }

  // Shard slice of pass 1: k_a contribution = sum of f'(x) over the shard's
  // rows. Densities are computed batch-at-a-time (sharded when an executor
  // is configured); the accumulation stays one sequential sweep in scan
  // order, so each part is bitwise independent of the worker count.
  NormalizerShardPart part;
  part.shard = info.shard;
  part.num_shards = info.num_shards;
  part.total_rows = info.total_rows;
  const double floor =
      options_.density_floor_fraction * estimator.AverageDensity();
  std::vector<double> densities;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    densities.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(estimator.EvaluateBatch(
        batch.rows, batch.count, densities.data(), options_.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      part.k_a += FlooredDensityPow(densities[static_cast<size_t>(i)], floor);
    }
    part.rows += batch.count;
  }

  PartialNormalizer partial;
  partial.parts.push_back(part);
  return partial;
}

Result<double> BiasedSampler::FinalizeNormalizer(
    const PartialNormalizer& partial) const {
  if (partial.parts.empty()) {
    return Status::InvalidArgument("partial normalizer state has no shards");
  }
  if (static_cast<int64_t>(partial.parts.size()) !=
      partial.parts.front().num_shards) {
    return Status::InvalidArgument(
        "partial normalizer state is incomplete: not every shard is present");
  }
  double k_a = 0.0;
  for (size_t i = 0; i < partial.parts.size(); ++i) {
    if (partial.parts[i].shard != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "partial normalizer state is incomplete: not every shard is "
          "present");
    }
    k_a += partial.parts[i].k_a;
  }
  return k_a;
}

[[nodiscard]] Result<PartialNormalizer> MergePartialNormalizers(PartialNormalizer a,
                                                  PartialNormalizer b) {
  DBS_RETURN_IF_ERROR(MergeShardParts(&a.parts, std::move(b.parts)));
  return a;
}

[[nodiscard]] Result<PartialSample> MergePartialSamples(PartialSample a, PartialSample b) {
  if (!a.parts.empty() && !b.parts.empty() &&
      a.parts.front().points.dim() != b.parts.front().points.dim()) {
    return Status::InvalidArgument(
        "cannot merge partial samples of different dimensionality");
  }
  DBS_RETURN_IF_ERROR(MergeShardParts(&a.parts, std::move(b.parts)));
  return a;
}

Result<BiasedSample> BiasedSampler::Run(
    const data::PointSet& points,
    const density::DensityEstimator& estimator) const {
  data::InMemoryScan scan(&points);
  return Run(scan, estimator);
}

Result<BiasedSample> BiasedSampler::RunOnePass(data::DataScan& scan,
                                               const density::Kde& kde) const {
  if (options_.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (scan.dim() != kde.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  const int64_t n = scan.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  // Kernel centers are a uniform sample of the data, so the sample mean of
  // f^a over them estimates E_D[f^a] and k_a ~= n * E_D[f^a]. No dataset
  // pass is spent on normalization.
  double k_a = static_cast<double>(n) *
               kde.MeanDensityPow(options_.a, options_.executor);
  if (k_a <= 0) {
    return Status::Internal("estimated normalizer k_a is not positive");
  }
  return SampleWithNormalizer(scan, kde, k_a);
}

Result<BiasedSample> BiasedSampler::RunOnePass(const data::PointSet& points,
                                               const density::Kde& kde) const {
  data::InMemoryScan scan(&points);
  return RunOnePass(scan, kde);
}

Result<BiasedSample> BiasedSampler::SampleWithNormalizer(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    double normalizer) const {
  ShardInfo info;
  info.total_rows = scan.size();
  DBS_ASSIGN_OR_RETURN(PartialSample partial,
                       SamplePartial(scan, estimator, normalizer, info));
  return FinalizeSample(std::move(partial), normalizer);
}

Result<PartialSample> BiasedSampler::SamplePartial(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    double normalizer, const ShardInfo& info) const {
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  DBS_RETURN_IF_ERROR(ValidateShardInfo(info));
  const RowRange range =
      ShardRowRange(info.total_rows, info.num_shards, info.shard);
  if (scan.size() != range.size()) {
    return Status::InvalidArgument(
        "scan does not cover the shard's row range");
  }
  const int dim = scan.dim();
  const double b = static_cast<double>(options_.target_size);
  const double floor =
      options_.density_floor_fraction * estimator.AverageDensity();

  SampleShardPart part;
  part.shard = info.shard;
  part.num_shards = info.num_shards;
  part.total_rows = info.total_rows;
  part.points = data::PointSet(dim);
  // Reserve the shard's expected share of the sample (plus slack).
  const int64_t expected =
      info.total_rows > 0
          ? options_.target_size * range.size() / info.total_rows
          : options_.target_size;
  part.points.Reserve(expected + expected / 4 + 16);

  // Densities for the whole scan batch first (parallel, pure per-point
  // arithmetic), then one sequential RNG sweep over the precomputed values
  // — the draw stream never depends on how the densities were computed, so
  // the sample is bitwise reproducible across worker counts. Each shard
  // draws from its own ShardSeed stream (shard 0 = the legacy stream).
  Rng rng(ShardSeed(options_.seed, info.shard));
  std::vector<double> densities;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    densities.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(estimator.EvaluateBatch(
        batch.rows, batch.count, densities.data(), options_.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView x = batch.point(i, dim);
      double f = densities[static_cast<size_t>(i)];
      double fa = FlooredDensityPow(f, floor);
      double p = b / normalizer * fa;
      if (p >= 1.0) {
        p = 1.0;
        ++part.clamped_count;
      }
      if (rng.NextBernoulli(p)) {
        part.points.Append(x);
        part.inclusion_probs.push_back(p);
        part.densities.push_back(f);
      }
    }
    part.rows += batch.count;
  }

  PartialSample partial;
  partial.parts.push_back(std::move(part));
  return partial;
}

Result<BiasedSample> BiasedSampler::FinalizeSample(PartialSample partial,
                                                   double normalizer) const {
  if (partial.parts.empty()) {
    return Status::InvalidArgument("partial sample state has no shards");
  }
  if (static_cast<int64_t>(partial.parts.size()) !=
      partial.parts.front().num_shards) {
    return Status::InvalidArgument(
        "partial sample state is incomplete: not every shard is present");
  }
  BiasedSample sample;
  sample.normalizer = normalizer;
  sample.dataset_size = partial.parts.front().total_rows;
  // Ascending shard order — per-shard accept lists concatenate in row order.
  sample.points = std::move(partial.parts.front().points);
  sample.inclusion_probs = std::move(partial.parts.front().inclusion_probs);
  sample.densities = std::move(partial.parts.front().densities);
  sample.clamped_count = partial.parts.front().clamped_count;
  if (partial.parts.front().shard != 0) {
    return Status::InvalidArgument(
        "partial sample state is incomplete: not every shard is present");
  }
  for (size_t i = 1; i < partial.parts.size(); ++i) {
    SampleShardPart& part = partial.parts[i];
    if (part.shard != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "partial sample state is incomplete: not every shard is present");
    }
    sample.points.AppendAll(part.points);
    sample.inclusion_probs.insert(sample.inclusion_probs.end(),
                                  part.inclusion_probs.begin(),
                                  part.inclusion_probs.end());
    sample.densities.insert(sample.densities.end(), part.densities.begin(),
                            part.densities.end());
    sample.clamped_count += part.clamped_count;
  }
  return sample;
}

}  // namespace dbs::core
