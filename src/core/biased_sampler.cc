#include "core/biased_sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/math.h"
#include "util/rng.h"

namespace dbs::core {

BiasedSampler::BiasedSampler(const BiasedSamplerOptions& options)
    : options_(options) {}

double BiasedSampler::FlooredDensityPow(double f, double floor) const {
  return SafePow(std::max(f, floor), options_.a);
}

double BiasedSampler::InclusionProbability(double density,
                                           double normalizer) const {
  if (normalizer <= 0) return 0.0;
  double fa = SafePow(density, options_.a);
  return std::min(1.0, static_cast<double>(options_.target_size) /
                           normalizer * fa);
}

Result<BiasedSample> BiasedSampler::Run(
    data::DataScan& scan, const density::DensityEstimator& estimator) const {
  if (options_.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  const int64_t n = scan.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }

  // Pass 1: exact normalizer k_a = sum over points of f'(x). Densities are
  // computed batch-at-a-time (sharded when an executor is configured); the
  // accumulation stays one sequential sweep in scan order, so k_a is
  // bitwise independent of the worker count.
  const double floor =
      options_.density_floor_fraction * estimator.AverageDensity();
  double k_a = 0.0;
  std::vector<double> densities;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    densities.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(estimator.EvaluateBatch(
        batch.rows, batch.count, densities.data(), options_.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      k_a += FlooredDensityPow(densities[static_cast<size_t>(i)], floor);
    }
  }
  if (k_a <= 0) {
    return Status::Internal("normalizer k_a is not positive");
  }
  return SampleWithNormalizer(scan, estimator, k_a);
}

Result<BiasedSample> BiasedSampler::Run(
    const data::PointSet& points,
    const density::DensityEstimator& estimator) const {
  data::InMemoryScan scan(&points);
  return Run(scan, estimator);
}

Result<BiasedSample> BiasedSampler::RunOnePass(data::DataScan& scan,
                                               const density::Kde& kde) const {
  if (options_.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (scan.dim() != kde.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  const int64_t n = scan.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  // Kernel centers are a uniform sample of the data, so the sample mean of
  // f^a over them estimates E_D[f^a] and k_a ~= n * E_D[f^a]. No dataset
  // pass is spent on normalization.
  double k_a = static_cast<double>(n) *
               kde.MeanDensityPow(options_.a, options_.executor);
  if (k_a <= 0) {
    return Status::Internal("estimated normalizer k_a is not positive");
  }
  return SampleWithNormalizer(scan, kde, k_a);
}

Result<BiasedSample> BiasedSampler::RunOnePass(const data::PointSet& points,
                                               const density::Kde& kde) const {
  data::InMemoryScan scan(&points);
  return RunOnePass(scan, kde);
}

Result<BiasedSample> BiasedSampler::SampleWithNormalizer(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    double normalizer) const {
  const int dim = scan.dim();
  const int64_t n = scan.size();
  const double b = static_cast<double>(options_.target_size);
  const double floor =
      options_.density_floor_fraction * estimator.AverageDensity();

  BiasedSample sample;
  sample.points = data::PointSet(dim);
  sample.normalizer = normalizer;
  sample.dataset_size = n;
  sample.points.Reserve(options_.target_size + options_.target_size / 4);

  // Densities for the whole scan batch first (parallel, pure per-point
  // arithmetic), then one sequential RNG sweep over the precomputed values
  // — the draw stream never depends on how the densities were computed, so
  // the sample is bitwise reproducible across worker counts.
  Rng rng(options_.seed);
  std::vector<double> densities;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    densities.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(estimator.EvaluateBatch(
        batch.rows, batch.count, densities.data(), options_.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView x = batch.point(i, dim);
      double f = densities[static_cast<size_t>(i)];
      double fa = FlooredDensityPow(f, floor);
      double p = b / normalizer * fa;
      if (p >= 1.0) {
        p = 1.0;
        ++sample.clamped_count;
      }
      if (rng.NextBernoulli(p)) {
        sample.points.Append(x);
        sample.inclusion_probs.push_back(p);
        sample.densities.push_back(f);
      }
    }
  }
  return sample;
}

}  // namespace dbs::core
