#include "core/grid_biased_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/rng.h"

namespace dbs::core {

GridBiasedSampler::GridBiasedSampler(const GridBiasedSamplerOptions& options)
    : options_(options) {}

Result<BiasedSample> GridBiasedSampler::Run(
    data::DataScan& scan, const density::GridDensity& grid) const {
  if (options_.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  if (scan.dim() != grid.dim()) {
    return Status::InvalidArgument(
        "grid dimensionality does not match the scan");
  }
  const int64_t n = scan.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  const double norm = grid.SumCountPow(options_.e);
  if (norm <= 0) {
    return Status::Internal("grid normalizer is not positive");
  }
  const double b = static_cast<double>(options_.target_size);
  const int dim = scan.dim();

  BiasedSample sample;
  sample.points = data::PointSet(dim);
  sample.normalizer = norm;
  sample.dataset_size = n;
  sample.points.Reserve(options_.target_size + options_.target_size / 4);

  Rng rng(options_.seed);
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView x = batch.point(i, dim);
      int64_t count = grid.CellCount(x);
      // Every scanned point was counted during Fit, so its cell count is at
      // least 1 when the same data is scanned; guard anyway for robustness
      // to mismatched scans.
      if (count <= 0) continue;
      double p = b * SafePow(static_cast<double>(count), options_.e - 1.0) /
                 norm;
      if (p >= 1.0) {
        p = 1.0;
        ++sample.clamped_count;
      }
      if (rng.NextBernoulli(p)) {
        sample.points.Append(x);
        sample.inclusion_probs.push_back(p);
        sample.densities.push_back(grid.Evaluate(x));
      }
    }
  }
  return sample;
}

Result<BiasedSample> GridBiasedSampler::Run(
    const data::PointSet& points, const density::GridDensity& grid) const {
  data::InMemoryScan scan(&points);
  return Run(scan, grid);
}

}  // namespace dbs::core
