#include "classify/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace dbs::classify {
namespace {

// Weighted Gini impurity of the class-mass vector.
double Gini(const std::vector<double>& class_mass, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0.0;
  for (double m : class_mass) sum_sq += (m / total) * (m / total);
  return 1.0 - sum_sq;
}

int32_t ArgMax(const std::vector<double>& v) {
  return static_cast<int32_t>(std::max_element(v.begin(), v.end()) -
                              v.begin());
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
};

// Exact best split over all features: sort rows per feature, sweep the
// prefix class masses. O(d * m log m) per node.
BestSplit FindBestSplit(const data::PointSet& points,
                        const std::vector<int32_t>& labels,
                        const std::vector<double>& weights,
                        const std::vector<int64_t>& rows, int num_classes,
                        double min_leaf_weight) {
  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };
  std::vector<double> total_mass(num_classes, 0.0);
  double total = 0.0;
  for (int64_t r : rows) {
    total_mass[labels[r]] += weight_of(r);
    total += weight_of(r);
  }
  const double parent_gini = Gini(total_mass, total);

  BestSplit best;
  std::vector<int64_t> sorted = rows;
  std::vector<double> left_mass(num_classes);
  for (int j = 0; j < points.dim(); ++j) {
    std::sort(sorted.begin(), sorted.end(), [&](int64_t a, int64_t b) {
      return points[a][j] < points[b][j];
    });
    std::fill(left_mass.begin(), left_mass.end(), 0.0);
    double left_total = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      int64_t r = sorted[i];
      left_mass[labels[r]] += weight_of(r);
      left_total += weight_of(r);
      double x = points[r][j];
      double x_next = points[sorted[i + 1]][j];
      if (x == x_next) continue;  // cannot split between equal values
      double right_total = total - left_total;
      if (left_total < min_leaf_weight || right_total < min_leaf_weight) {
        continue;
      }
      // Weighted child impurity.
      double right_gini;
      {
        double sum_sq = 0.0;
        for (int c = 0; c < num_classes; ++c) {
          double m = total_mass[c] - left_mass[c];
          sum_sq += (m / right_total) * (m / right_total);
        }
        right_gini = 1.0 - sum_sq;
      }
      double left_gini = Gini(left_mass, left_total);
      double weighted = (left_total * left_gini + right_total * right_gini) /
                        total;
      double decrease = parent_gini - weighted;
      if (decrease > best.impurity_decrease) {
        best.impurity_decrease = decrease;
        best.feature = j;
        best.threshold = 0.5 * (x + x_next);
      }
    }
  }
  return best;
}

}  // namespace

Result<DecisionTree> DecisionTree::Train(const data::PointSet& points,
                                         const std::vector<int32_t>& labels,
                                         const std::vector<double>& weights,
                                         const DecisionTreeOptions& options) {
  const int64_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot train on an empty point set");
  }
  if (static_cast<int64_t>(labels.size()) != n) {
    return Status::InvalidArgument("labels size must match points");
  }
  if (!weights.empty()) {
    if (static_cast<int64_t>(weights.size()) != n) {
      return Status::InvalidArgument("weights size must match points");
    }
    for (double w : weights) {
      if (!(w > 0)) {
        return Status::InvalidArgument("weights must be positive");
      }
    }
  }
  if (options.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be at least 1");
  }
  if (options.min_leaf_weight <= 0) {
    return Status::InvalidArgument("min_leaf_weight must be positive");
  }
  int32_t max_label = 0;
  for (int32_t label : labels) {
    if (label < 0) {
      return Status::InvalidArgument("labels must be non-negative");
    }
    max_label = std::max(max_label, label);
  }

  DecisionTree tree;
  tree.num_classes_ = max_label + 1;
  std::vector<int64_t> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), int64_t{0});
  // dbs-lint: allow(unchecked-status): returns a node id, not a Status
  tree.Build(points, labels, weights, rows, 0, options);
  return tree;
}

int32_t DecisionTree::Build(const data::PointSet& points,
                            const std::vector<int32_t>& labels,
                            const std::vector<double>& weights,
                            std::vector<int64_t>& rows, int depth,
                            const DecisionTreeOptions& options) {
  depth_ = std::max(depth_, depth);
  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };
  std::vector<double> class_mass(num_classes_, 0.0);
  for (int64_t r : rows) class_mass[labels[r]] += weight_of(r);

  Node node;
  node.prediction = ArgMax(class_mass);

  bool pure = true;
  for (int64_t r : rows) {
    if (labels[r] != labels[rows[0]]) {
      pure = false;
      break;
    }
  }
  if (!pure && depth < options.max_depth) {
    BestSplit split = FindBestSplit(points, labels, weights, rows,
                                    num_classes_, options.min_leaf_weight);
    if (split.feature >= 0 &&
        split.impurity_decrease >= options.min_impurity_decrease) {
      std::vector<int64_t> left_rows;
      std::vector<int64_t> right_rows;
      for (int64_t r : rows) {
        (points[r][split.feature] <= split.threshold ? left_rows
                                                     : right_rows)
            .push_back(r);
      }
      DBS_CHECK(!left_rows.empty() && !right_rows.empty());
      rows.clear();
      rows.shrink_to_fit();
      node.feature = static_cast<int16_t>(split.feature);
      node.threshold = split.threshold;
      int32_t self = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(node);
      int32_t left = Build(points, labels, weights, left_rows, depth + 1,
                           options);
      int32_t right = Build(points, labels, weights, right_rows, depth + 1,
                            options);
      nodes_[self].left = left;
      nodes_[self].right = right;
      return self;
    }
  }
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t DecisionTree::Predict(data::PointView p) const {
  DBS_CHECK(!nodes_.empty());
  int32_t current = 0;
  while (nodes_[current].feature >= 0) {
    const Node& node = nodes_[current];
    current = p[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[current].prediction;
}

double DecisionTree::Accuracy(const data::PointSet& points,
                              const std::vector<int32_t>& labels) const {
  DBS_CHECK(static_cast<int64_t>(labels.size()) == points.size());
  if (points.empty()) return 0.0;
  int64_t correct = 0;
  for (int64_t i = 0; i < points.size(); ++i) {
    if (Predict(points[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(points.size());
}

std::vector<double> DecisionTree::PerClassRecall(
    const data::PointSet& points, const std::vector<int32_t>& labels,
    int num_classes) const {
  DBS_CHECK(static_cast<int64_t>(labels.size()) == points.size());
  std::vector<int64_t> total(num_classes, 0);
  std::vector<int64_t> correct(num_classes, 0);
  for (int64_t i = 0; i < points.size(); ++i) {
    int32_t label = labels[i];
    DBS_CHECK(label >= 0 && label < num_classes);
    ++total[label];
    if (Predict(points[i]) == label) ++correct[label];
  }
  std::vector<double> recall(num_classes, 1.0);
  for (int c = 0; c < num_classes; ++c) {
    if (total[c] > 0) {
      recall[c] = static_cast<double>(correct[c]) /
                  static_cast<double>(total[c]);
    }
  }
  return recall;
}

}  // namespace dbs::classify
