// Weighted CART-style decision tree classifier.
//
// The paper's conclusion names classification and decision-tree
// construction as tasks that "can potentially benefit both in construction
// time and usability by the application of similar biased sampling
// techniques suitably adjusted". This module provides the substrate for
// that extension: a binary axis-aligned tree grown by weighted Gini
// impurity, accepting the per-point Horvitz-Thompson weights a biased
// sample carries, so a tree trained on the sample estimates the tree the
// full dataset would induce. bench/classification_extension runs the
// experiment: minority classes that uniform samples starve stay learnable
// from sparse-region-biased samples.

#ifndef DBS_CLASSIFY_DECISION_TREE_H_
#define DBS_CLASSIFY_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "data/point_set.h"
#include "util/status.h"

namespace dbs::classify {

struct DecisionTreeOptions {
  int max_depth = 12;
  // Minimum total weight a leaf must retain.
  double min_leaf_weight = 1.0;
  // A split must reduce weighted Gini impurity by at least this much.
  double min_impurity_decrease = 1e-7;
};

class DecisionTree {
 public:
  // Trains on `points` with integer class labels >= 0. `weights` empty
  // (all 1) or one positive entry per point.
  [[nodiscard]] static Result<DecisionTree> Train(const data::PointSet& points,
                                    const std::vector<int32_t>& labels,
                                    const std::vector<double>& weights,
                                    const DecisionTreeOptions& options);

  // Predicted class for p.
  int32_t Predict(data::PointView p) const;

  // Fraction of correctly classified points (unweighted).
  double Accuracy(const data::PointSet& points,
                  const std::vector<int32_t>& labels) const;

  // Per-class recall: recall[c] = correct_c / total_c for classes that
  // appear in `labels`; classes absent from the data get recall 1.
  std::vector<double> PerClassRecall(const data::PointSet& points,
                                     const std::vector<int32_t>& labels,
                                     int num_classes) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_classes() const { return num_classes_; }
  int depth() const { return depth_; }

 private:
  struct Node {
    // Leaf when feature < 0.
    int16_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;    // points with x[feature] <= threshold
    int32_t right = -1;
    int32_t prediction = 0;
  };

  DecisionTree() = default;

  int32_t Build(const data::PointSet& points,
                const std::vector<int32_t>& labels,
                const std::vector<double>& weights,
                std::vector<int64_t>& rows, int depth,
                const DecisionTreeOptions& options);

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  int depth_ = 0;
};

}  // namespace dbs::classify

#endif  // DBS_CLASSIFY_DECISION_TREE_H_
