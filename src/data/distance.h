// Distance metrics over PointViews.
//
// The paper states results for Euclidean distance but notes that other
// metrics (L1, Linf) work equally well; detectors and clusterers take a
// Metric enum so all three are exercised by the test suite.

#ifndef DBS_DATA_DISTANCE_H_
#define DBS_DATA_DISTANCE_H_

#include <algorithm>
#include <cmath>

#include "data/point_set.h"
#include "util/check.h"

namespace dbs::data {

enum class Metric {
  kL2 = 0,
  kL1,
  kLinf,
};

inline double SquaredL2(PointView a, PointView b) {
  DBS_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (int j = 0; j < a.dim(); ++j) {
    double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

inline double Distance(PointView a, PointView b, Metric metric = Metric::kL2) {
  DBS_DCHECK(a.dim() == b.dim());
  switch (metric) {
    case Metric::kL2:
      return std::sqrt(SquaredL2(a, b));
    case Metric::kL1: {
      double sum = 0.0;
      for (int j = 0; j < a.dim(); ++j) sum += std::abs(a[j] - b[j]);
      return sum;
    }
    case Metric::kLinf: {
      double best = 0.0;
      for (int j = 0; j < a.dim(); ++j)
        best = std::max(best, std::abs(a[j] - b[j]));
      return best;
    }
  }
  return 0.0;
}

}  // namespace dbs::data

#endif  // DBS_DATA_DISTANCE_H_
