#include "data/range_scan.h"

#include <algorithm>

#include "util/check.h"

namespace dbs::data {

RangeScan::RangeScan(DataScan* base, int64_t row_begin, int64_t row_end)
    : base_(base), row_begin_(row_begin), row_end_(row_end) {
  DBS_CHECK(base != nullptr);
  DBS_CHECK_MSG(0 <= row_begin && row_begin <= row_end &&
                    row_end <= base->size(),
                "row range must lie within the base scan");
}

void RangeScan::Reset() {
  base_->Reset();
  started_ = true;
  positioned_ = false;
  cursor_ = row_begin_;
  pending_ = ScanBatch();
  pending_start_ = 0;
  BumpPass();
}

bool RangeScan::NextBatch(ScanBatch* batch) {
  DBS_CHECK_MSG(started_, "Reset() must be called before NextBatch()");
  if (cursor_ >= row_end_) return false;
  if (!positioned_) {
    // Skip whole base batches until the one containing row_begin_.
    int64_t pos = 0;
    while (true) {
      if (!base_->NextBatch(&pending_)) return false;
      if (pos + pending_.count > row_begin_) {
        pending_start_ = pos;
        break;
      }
      pos += pending_.count;
    }
    positioned_ = true;
  }
  while (cursor_ >= pending_start_ + pending_.count) {
    const int64_t pos = pending_start_ + pending_.count;
    if (!base_->NextBatch(&pending_)) return false;
    pending_start_ = pos;
  }
  const int64_t offset = cursor_ - pending_start_;
  batch->rows = pending_.rows + offset * dim();
  batch->count = std::min(pending_.count - offset, row_end_ - cursor_);
  cursor_ += batch->count;
  return true;
}

}  // namespace dbs::data
