// Axis-aligned bounding boxes and the [0,1]^d scaler.
//
// The sampling technique assumes the data domain is the unit cube (paper
// §2.2, "otherwise we can scale the attributes"); UnitScaler performs that
// affine rescaling and its inverse, and is fitted in the same pass that
// collects kernel centers.

#ifndef DBS_DATA_BOUNDS_H_
#define DBS_DATA_BOUNDS_H_

#include <vector>

#include "data/point_set.h"

namespace dbs::data {

// Axis-aligned box [lo_j, hi_j] per dimension.
class BoundingBox {
 public:
  BoundingBox() = default;
  explicit BoundingBox(int dim);
  BoundingBox(std::vector<double> lo, std::vector<double> hi);

  int dim() const { return static_cast<int>(lo_.size()); }
  bool empty() const { return count_ == 0; }

  // Expands the box to cover p.
  void Extend(PointView p);

  // Expands the box to cover another box.
  void Extend(const BoundingBox& other);

  // True if p lies inside the closed box.
  bool Contains(PointView p) const;

  // True if p lies inside the box shrunk by `margin` on every side — the
  // "interior" test used by the cluster-found evaluation metric.
  bool ContainsInterior(PointView p, double margin) const;

  double lo(int j) const { return lo_[j]; }
  double hi(int j) const { return hi_[j]; }
  double extent(int j) const { return hi_[j] - lo_[j]; }

  // Product of extents; 0 for an empty box.
  double Volume() const;

  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  int64_t count_ = 0;
};

// Affine map of a bounding box onto [0,1]^d. Degenerate dimensions (zero
// extent) map to 0.5.
class UnitScaler {
 public:
  UnitScaler() = default;
  explicit UnitScaler(const BoundingBox& box);

  // Fits the scaler to cover all points of `points`.
  static UnitScaler Fit(const PointSet& points);

  int dim() const { return static_cast<int>(offset_.size()); }

  // Writes the scaled image of p into out[0..d).
  void Transform(PointView p, double* out) const;

  // Scales every point; returns a new set in unit coordinates.
  PointSet TransformAll(const PointSet& points) const;

  // Maps a unit-cube point back to the original domain.
  void Inverse(PointView p, double* out) const;

  // Scales a length along dimension j (for transforming radii per axis).
  double ScaleLength(int j, double len) const { return len * scale_[j]; }

 private:
  std::vector<double> offset_;
  std::vector<double> scale_;
};

}  // namespace dbs::data

#endif  // DBS_DATA_BOUNDS_H_
