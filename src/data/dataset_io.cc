#include "data/dataset_io.h"

#include <algorithm>
#include <cstring>

namespace dbs::data {
namespace {

struct FileHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t dim;
  uint32_t reserved;
  int64_t rows;
  int64_t reserved2;
};
static_assert(sizeof(FileHeader) == 32, "header must be 32 bytes");

}  // namespace

[[nodiscard]] Status WriteDatasetFile(const std::string& path, const PointSet& points) {
  if (points.dim() <= 0) {
    return Status::InvalidArgument("cannot write a dimensionless point set");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  FileHeader header{};
  header.magic = kDatasetMagic;
  header.version = kDatasetVersion;
  header.dim = static_cast<uint32_t>(points.dim());
  header.rows = points.size();
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && !points.flat().empty()) {
    ok = std::fwrite(points.flat().data(), sizeof(double),
                     points.flat().size(), f) == points.flat().size();
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::Ok();
}

[[nodiscard]] Result<PointSet> ReadDatasetFile(const std::string& path) {
  DBS_ASSIGN_OR_RETURN(auto scan, FileScan::Open(path));
  return ReadAll(*scan);
}

Result<std::unique_ptr<FileScan>> FileScan::Open(const std::string& path,
                                                 int64_t batch_rows,
                                                 bool double_buffered) {
  if (batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  FileHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("truncated header: " + path);
  }
  if (header.magic != kDatasetMagic) {
    std::fclose(f);
    return Status::InvalidArgument("not a .dbsf file: " + path);
  }
  if (header.version != kDatasetVersion) {
    std::fclose(f);
    return Status::InvalidArgument("unsupported .dbsf version");
  }
  if (header.dim == 0 || header.dim > 4096 || header.rows < 0) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt .dbsf header");
  }
  // The payload the header promises must actually be present; otherwise a
  // corrupted/truncated file would abort mid-scan or provoke a huge
  // allocation from a garbage row count.
  std::fseek(f, 0, SEEK_END);
  long actual_bytes = std::ftell(f);
  std::fseek(f, sizeof(FileHeader), SEEK_SET);
  double expected_bytes =
      static_cast<double>(sizeof(FileHeader)) +
      static_cast<double>(header.rows) * header.dim * sizeof(double);
  if (actual_bytes < 0 || static_cast<double>(actual_bytes) < expected_bytes) {
    std::fclose(f);
    return Status::InvalidArgument(
        "dataset file is shorter than its header claims: " + path);
  }
  return std::unique_ptr<FileScan>(
      new FileScan(  // dbs-lint: allow(raw-alloc): private ctor
          f, static_cast<int>(header.dim), header.rows, batch_rows,
          double_buffered));
}

FileScan::FileScan(std::FILE* file, int dim, int64_t rows, int64_t batch_rows,
                   bool double_buffered)
    : file_(file),
      dim_(dim),
      rows_(rows),
      batch_rows_(batch_rows),
      double_buffered_(double_buffered) {
  buffer_.resize(static_cast<size_t>(batch_rows_) * dim_);
  if (double_buffered_) {
    prefetch_buffer_.resize(static_cast<size_t>(batch_rows_) * dim_);
    // Spawned only after Open validated the header and payload length, so
    // malformed files never reach the thread.
    prefetch_thread_ = std::thread([this] { PrefetchLoop(); });
  }
}

FileScan::~FileScan() {
  if (prefetch_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    fill_requested_cv_.notify_one();
    prefetch_thread_.join();
  }
  if (file_ != nullptr) std::fclose(file_);
}

void FileScan::PrefetchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    fill_requested_cv_.wait(lock,
                            [this] { return fill_requested_ || shutdown_; });
    if (shutdown_) return;
    const int64_t want = fill_want_;
    // The consumer never touches file_ or prefetch_buffer_ while a fill is
    // in flight (it waits for fill_done_), so reading unlocked is safe.
    lock.unlock();
    size_t got = std::fread(prefetch_buffer_.data(), sizeof(double) * dim_,
                            static_cast<size_t>(want), file_);
    lock.lock();
    fill_got_ = got;
    fill_requested_ = false;
    fill_done_ = true;
    fill_done_cv_.notify_all();
  }
}

void FileScan::RequestFill(int64_t want) {
  fill_want_ = want;
  fill_done_ = false;
  fill_requested_ = true;
  fill_requested_cv_.notify_one();
}

void FileScan::Reset() {
  if (double_buffered_) {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain any in-flight fill so the fseek cannot race the fread; the
    // stale chunk (from the pre-Reset position) is simply discarded.
    fill_done_cv_.wait(lock, [this] { return !fill_requested_; });
    fill_done_ = false;
    std::fseek(file_, sizeof(FileHeader), SEEK_SET);
    cursor_ = 0;
    started_ = true;
    // Kick off the first chunk's prefetch immediately: it loads while the
    // caller is still between Reset and the first NextBatch.
    if (rows_ > 0) RequestFill(std::min(batch_rows_, rows_));
    BumpPass();
    return;
  }
  std::fseek(file_, sizeof(FileHeader), SEEK_SET);
  cursor_ = 0;
  started_ = true;
  BumpPass();
}

bool FileScan::NextBatch(ScanBatch* batch) {
  DBS_CHECK_MSG(started_, "Reset() must be called before NextBatch()");
  if (cursor_ >= rows_) return false;
  if (double_buffered_) {
    int64_t want = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      fill_done_cv_.wait(lock, [this] { return fill_done_; });
      fill_done_ = false;
      want = fill_want_;
      // Same abort, same message as the synchronous path — surfaced on the
      // calling thread, not the prefetch thread.
      DBS_CHECK_MSG(fill_got_ == static_cast<size_t>(want),
                    "dataset file shorter than its header claims");
      buffer_.swap(prefetch_buffer_);
      cursor_ += want;
      // Overlap: the next chunk loads while the caller processes this one.
      if (cursor_ < rows_) RequestFill(std::min(batch_rows_, rows_ - cursor_));
    }
    batch->rows = buffer_.data();
    batch->count = want;
    return true;
  }
  int64_t want = std::min(batch_rows_, rows_ - cursor_);
  size_t got = std::fread(buffer_.data(), sizeof(double) * dim_,
                          static_cast<size_t>(want), file_);
  DBS_CHECK_MSG(got == static_cast<size_t>(want),
                "dataset file shorter than its header claims");
  batch->rows = buffer_.data();
  batch->count = want;
  cursor_ += want;
  return true;
}

}  // namespace dbs::data
