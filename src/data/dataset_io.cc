#include "data/dataset_io.h"

#include <cstring>

namespace dbs::data {
namespace {

struct FileHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t dim;
  uint32_t reserved;
  int64_t rows;
  int64_t reserved2;
};
static_assert(sizeof(FileHeader) == 32, "header must be 32 bytes");

}  // namespace

Status WriteDatasetFile(const std::string& path, const PointSet& points) {
  if (points.dim() <= 0) {
    return Status::InvalidArgument("cannot write a dimensionless point set");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  FileHeader header{};
  header.magic = kDatasetMagic;
  header.version = kDatasetVersion;
  header.dim = static_cast<uint32_t>(points.dim());
  header.rows = points.size();
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && !points.flat().empty()) {
    ok = std::fwrite(points.flat().data(), sizeof(double),
                     points.flat().size(), f) == points.flat().size();
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<PointSet> ReadDatasetFile(const std::string& path) {
  DBS_ASSIGN_OR_RETURN(auto scan, FileScan::Open(path));
  return ReadAll(*scan);
}

Result<std::unique_ptr<FileScan>> FileScan::Open(const std::string& path,
                                                 int64_t batch_rows) {
  if (batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  FileHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("truncated header: " + path);
  }
  if (header.magic != kDatasetMagic) {
    std::fclose(f);
    return Status::InvalidArgument("not a .dbsf file: " + path);
  }
  if (header.version != kDatasetVersion) {
    std::fclose(f);
    return Status::InvalidArgument("unsupported .dbsf version");
  }
  if (header.dim == 0 || header.dim > 4096 || header.rows < 0) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt .dbsf header");
  }
  // The payload the header promises must actually be present; otherwise a
  // corrupted/truncated file would abort mid-scan or provoke a huge
  // allocation from a garbage row count.
  std::fseek(f, 0, SEEK_END);
  long actual_bytes = std::ftell(f);
  std::fseek(f, sizeof(FileHeader), SEEK_SET);
  double expected_bytes =
      static_cast<double>(sizeof(FileHeader)) +
      static_cast<double>(header.rows) * header.dim * sizeof(double);
  if (actual_bytes < 0 || static_cast<double>(actual_bytes) < expected_bytes) {
    std::fclose(f);
    return Status::InvalidArgument(
        "dataset file is shorter than its header claims: " + path);
  }
  return std::unique_ptr<FileScan>(
      new FileScan(  // dbs-lint: allow(raw-alloc): private ctor
          f, static_cast<int>(header.dim), header.rows, batch_rows));
}

FileScan::FileScan(std::FILE* file, int dim, int64_t rows, int64_t batch_rows)
    : file_(file), dim_(dim), rows_(rows), batch_rows_(batch_rows) {
  buffer_.resize(static_cast<size_t>(batch_rows_) * dim_);
}

FileScan::~FileScan() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileScan::Reset() {
  std::fseek(file_, sizeof(FileHeader), SEEK_SET);
  cursor_ = 0;
  started_ = true;
  BumpPass();
}

bool FileScan::NextBatch(ScanBatch* batch) {
  DBS_CHECK_MSG(started_, "Reset() must be called before NextBatch()");
  if (cursor_ >= rows_) return false;
  int64_t want = std::min(batch_rows_, rows_ - cursor_);
  size_t got = std::fread(buffer_.data(), sizeof(double) * dim_,
                          static_cast<size_t>(want), file_);
  DBS_CHECK_MSG(got == static_cast<size_t>(want),
                "dataset file shorter than its header claims");
  batch->rows = buffer_.data();
  batch->count = want;
  cursor_ += want;
  return true;
}

}  // namespace dbs::data
