// Static kd-tree over a PointSet.
//
// Supports nearest-neighbor, k-nearest, radius search, and neighbor counting
// with early abort (the primitive the outlier verification pass needs: stop
// as soon as more than `cap` neighbors are seen). The tree indexes point
// positions at build time; the underlying PointSet must stay alive and
// unmodified.
//
// Construction is the classic median split on the widest dimension, giving
// a balanced tree in O(n log n).

#ifndef DBS_DATA_KD_TREE_H_
#define DBS_DATA_KD_TREE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "data/distance.h"
#include "data/point_set.h"

namespace dbs::data {

class KdTree {
 public:
  // Builds over all points of `points` (kept by pointer; must outlive tree).
  explicit KdTree(const PointSet* points);

  // Builds over a subset given by indices into `points`.
  KdTree(const PointSet* points, std::vector<int64_t> indices);

  int64_t size() const { return static_cast<int64_t>(items_.size()); }

  // Index (into the original PointSet) of the nearest neighbor of `query`.
  // If `exclude` >= 0, that point index is skipped (for self-queries).
  // Returns -1 on an empty tree.
  int64_t Nearest(PointView query, int64_t exclude = -1) const;

  // Indices of the k nearest neighbors, closest first.
  std::vector<int64_t> KNearest(PointView query, int k,
                                int64_t exclude = -1) const;

  // All point indices within L2 distance `radius` of `query` (inclusive).
  std::vector<int64_t> WithinRadius(PointView query, double radius) const;

  // Counts points within `radius`, stopping early once the count exceeds
  // `cap` (returns cap+1 in that case). cap < 0 means count everything.
  int64_t CountWithinRadius(PointView query, double radius,
                            int64_t cap = -1) const;

  // Result of a group-filtered nearest query: the winning point, the group
  // it belongs to and the squared L2 distance. index < 0 when no point
  // passed the filter.
  struct GroupNearest {
    int64_t index = -1;
    int32_t group = -1;
    double d2 = std::numeric_limits<double>::infinity();
  };

  // Nearest point among those whose group (`group_of[point_index]`) is
  // active (`group_active[group] != 0`) and differs from `exclude_group`.
  // Distance ties resolve toward the SMALLEST group id — the agglomerative
  // clusterer's "lowest cluster index wins" contract — so the far-subtree
  // prune uses `<=` rather than `<` (an equal-distance point in the far
  // half may carry a smaller group id). `group_of` must have one entry per
  // point of the indexed PointSet; `group_active` one entry per group id.
  GroupNearest NearestExcludingGroup(
      PointView query, const std::vector<int32_t>& group_of,
      int32_t exclude_group, const std::vector<uint8_t>& group_active) const;

  // Metric-general variants: for any of L2/L1/Linf the per-axis splitting-
  // plane distance lower-bounds the metric distance, so the same tree
  // prunes correctly; only the leaf-level distance changes.
  std::vector<int64_t> WithinRadiusMetric(PointView query, double radius,
                                          Metric metric) const;
  int64_t CountWithinRadiusMetric(PointView query, double radius,
                                  Metric metric, int64_t cap = -1) const;

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    int32_t begin = 0;   // leaf: range into items_
    int32_t end = 0;
    int16_t axis = -1;   // -1 for leaf
    double split = 0.0;
  };

  static constexpr int kLeafSize = 16;

  int32_t Build(int32_t begin, int32_t end);

  void NearestImpl(int32_t node, PointView query, int64_t exclude,
                   double& best_d2, int64_t& best_idx) const;

  void NearestGroupImpl(int32_t node, PointView query,
                        const std::vector<int32_t>& group_of,
                        int32_t exclude_group,
                        const std::vector<uint8_t>& group_active,
                        GroupNearest& best) const;

  struct HeapEntry {
    double d2;
    int64_t idx;
    bool operator<(const HeapEntry& o) const { return d2 < o.d2; }
  };
  void KNearestImpl(int32_t node, PointView query, int k, int64_t exclude,
                    std::vector<HeapEntry>& heap) const;

  void RadiusImpl(int32_t node, PointView query, double r2,
                  std::vector<int64_t>* out, int64_t* count,
                  int64_t cap) const;

  void RadiusMetricImpl(int32_t node, PointView query, double radius,
                        Metric metric, std::vector<int64_t>* out,
                        int64_t* count, int64_t cap) const;

  const PointSet* points_;
  std::vector<int64_t> items_;  // permutation of point indices
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace dbs::data

#endif  // DBS_DATA_KD_TREE_H_
