#include "data/point_set.h"

namespace dbs::data {

PointSet::PointSet(int dim, std::initializer_list<double> flat) : dim_(dim) {
  DBS_CHECK(dim > 0);
  DBS_CHECK(flat.size() % static_cast<size_t>(dim) == 0);
  flat_.assign(flat.begin(), flat.end());
}

void PointSet::Append(const double* coords) {
  DBS_CHECK(dim_ > 0);
  flat_.insert(flat_.end(), coords, coords + dim_);
}

void PointSet::AppendAll(const PointSet& other) {
  if (other.empty()) return;
  if (dim_ == 0) dim_ = other.dim();
  DBS_CHECK(dim_ == other.dim());
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
}

PointSet PointSet::Gather(const std::vector<int64_t>& indices) const {
  PointSet out(dim_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t i : indices) out.Append((*this)[i]);
  return out;
}

}  // namespace dbs::data
