#include "data/bounds.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dbs::data {

BoundingBox::BoundingBox(int dim)
    : lo_(dim, std::numeric_limits<double>::infinity()),
      hi_(dim, -std::numeric_limits<double>::infinity()) {
  DBS_CHECK(dim > 0);
}

BoundingBox::BoundingBox(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)), count_(1) {
  DBS_CHECK(lo_.size() == hi_.size());
  for (size_t j = 0; j < lo_.size(); ++j) DBS_CHECK(lo_[j] <= hi_[j]);
}

void BoundingBox::Extend(PointView p) {
  if (lo_.empty()) {
    lo_.assign(p.begin(), p.end());
    hi_.assign(p.begin(), p.end());
    count_ = 1;
    return;
  }
  DBS_CHECK(p.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    lo_[j] = std::min(lo_[j], p[j]);
    hi_[j] = std::max(hi_[j], p[j]);
  }
  ++count_;
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.empty()) return;
  if (empty() && lo_.empty()) {
    *this = other;
    return;
  }
  DBS_CHECK(other.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    lo_[j] = std::min(lo_[j], other.lo_[j]);
    hi_[j] = std::max(hi_[j], other.hi_[j]);
  }
  count_ += other.count_;
}

bool BoundingBox::Contains(PointView p) const {
  DBS_CHECK(p.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    if (p[j] < lo_[j] || p[j] > hi_[j]) return false;
  }
  return true;
}

bool BoundingBox::ContainsInterior(PointView p, double margin) const {
  DBS_CHECK(p.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    double m = margin * extent(j);
    if (p[j] < lo_[j] + m || p[j] > hi_[j] - m) return false;
  }
  return true;
}

double BoundingBox::Volume() const {
  if (empty()) return 0.0;
  double v = 1.0;
  for (int j = 0; j < dim(); ++j) v *= extent(j);
  return v;
}

UnitScaler::UnitScaler(const BoundingBox& box) {
  DBS_CHECK(!box.empty());
  int d = box.dim();
  offset_.resize(d);
  scale_.resize(d);
  for (int j = 0; j < d; ++j) {
    offset_[j] = box.lo(j);
    double ext = box.extent(j);
    scale_[j] = ext > 0 ? 1.0 / ext : 0.0;
  }
}

UnitScaler UnitScaler::Fit(const PointSet& points) {
  DBS_CHECK(!points.empty());
  BoundingBox box(points.dim());
  for (int64_t i = 0; i < points.size(); ++i) box.Extend(points[i]);
  return UnitScaler(box);
}

void UnitScaler::Transform(PointView p, double* out) const {
  DBS_CHECK(p.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    out[j] = scale_[j] > 0 ? (p[j] - offset_[j]) * scale_[j] : 0.5;
  }
}

PointSet UnitScaler::TransformAll(const PointSet& points) const {
  DBS_CHECK(points.dim() == dim());
  PointSet out(points.dim());
  out.Reserve(points.size());
  std::vector<double> buf(points.dim());
  for (int64_t i = 0; i < points.size(); ++i) {
    Transform(points[i], buf.data());
    out.Append(buf);
  }
  return out;
}

void UnitScaler::Inverse(PointView p, double* out) const {
  DBS_CHECK(p.dim() == dim());
  for (int j = 0; j < dim(); ++j) {
    out[j] = scale_[j] > 0 ? p[j] / scale_[j] + offset_[j] : offset_[j];
  }
}

}  // namespace dbs::data
