#include "data/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "data/distance.h"

namespace dbs::data {

KdTree::KdTree(const PointSet* points) : points_(points) {
  DBS_CHECK(points != nullptr);
  items_.resize(static_cast<size_t>(points->size()));
  std::iota(items_.begin(), items_.end(), int64_t{0});
  if (!items_.empty()) {
    nodes_.reserve(2 * items_.size() / kLeafSize + 2);
    root_ = Build(0, static_cast<int32_t>(items_.size()));
  }
}

KdTree::KdTree(const PointSet* points, std::vector<int64_t> indices)
    : points_(points), items_(std::move(indices)) {
  DBS_CHECK(points != nullptr);
  for (int64_t idx : items_) {
    DBS_CHECK(idx >= 0 && idx < points->size());
  }
  if (!items_.empty()) {
    nodes_.reserve(2 * items_.size() / kLeafSize + 2);
    root_ = Build(0, static_cast<int32_t>(items_.size()));
  }
}

int32_t KdTree::Build(int32_t begin, int32_t end) {
  Node node;
  if (end - begin <= kLeafSize) {
    node.begin = begin;
    node.end = end;
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  // Split on the widest dimension at the median.
  int d = points_->dim();
  int best_axis = 0;
  double best_extent = -1.0;
  for (int j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (int32_t i = begin; i < end; ++i) {
      double v = (*points_)[items_[i]][j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      best_axis = j;
    }
  }
  int32_t mid = begin + (end - begin) / 2;
  std::nth_element(items_.begin() + begin, items_.begin() + mid,
                   items_.begin() + end, [&](int64_t a, int64_t b) {
                     return (*points_)[a][best_axis] < (*points_)[b][best_axis];
                   });
  node.axis = static_cast<int16_t>(best_axis);
  node.split = (*points_)[items_[mid]][best_axis];
  int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  int32_t left = Build(begin, mid);
  int32_t right = Build(mid, end);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

int64_t KdTree::Nearest(PointView query, int64_t exclude) const {
  if (items_.empty()) return -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  int64_t best_idx = -1;
  NearestImpl(root_, query, exclude, best_d2, best_idx);
  return best_idx;
}

void KdTree::NearestImpl(int32_t node_id, PointView query, int64_t exclude,
                         double& best_d2, int64_t& best_idx) const {
  const Node& node = nodes_[node_id];
  if (node.axis < 0) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int64_t idx = items_[i];
      if (idx == exclude) continue;
      double d2 = SquaredL2(query, (*points_)[idx]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best_idx = idx;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int32_t near = diff < 0 ? node.left : node.right;
  int32_t far = diff < 0 ? node.right : node.left;
  NearestImpl(near, query, exclude, best_d2, best_idx);
  if (diff * diff < best_d2) {
    NearestImpl(far, query, exclude, best_d2, best_idx);
  }
}

KdTree::GroupNearest KdTree::NearestExcludingGroup(
    PointView query, const std::vector<int32_t>& group_of,
    int32_t exclude_group, const std::vector<uint8_t>& group_active) const {
  GroupNearest best;
  if (items_.empty()) return best;
  DBS_DCHECK(static_cast<int64_t>(group_of.size()) == points_->size());
  NearestGroupImpl(root_, query, group_of, exclude_group, group_active,
                   best);
  return best;
}

void KdTree::NearestGroupImpl(int32_t node_id, PointView query,
                              const std::vector<int32_t>& group_of,
                              int32_t exclude_group,
                              const std::vector<uint8_t>& group_active,
                              GroupNearest& best) const {
  const Node& node = nodes_[node_id];
  if (node.axis < 0) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int64_t idx = items_[i];
      int32_t group = group_of[static_cast<size_t>(idx)];
      if (group == exclude_group ||
          group_active[static_cast<size_t>(group)] == 0) {
        continue;
      }
      double d2 = SquaredL2(query, (*points_)[idx]);
      if (d2 < best.d2 || (d2 == best.d2 && group < best.group)) {
        best.d2 = d2;
        best.group = group;
        best.index = idx;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int32_t near = diff < 0 ? node.left : node.right;
  int32_t far = diff < 0 ? node.right : node.left;
  NearestGroupImpl(near, query, group_of, exclude_group, group_active, best);
  // `<=`, not `<`: an equal-distance point beyond the splitting plane can
  // still win the tie on a smaller group id.
  if (diff * diff <= best.d2) {
    NearestGroupImpl(far, query, group_of, exclude_group, group_active,
                     best);
  }
}

std::vector<int64_t> KdTree::KNearest(PointView query, int k,
                                      int64_t exclude) const {
  std::vector<HeapEntry> heap;
  if (k <= 0 || items_.empty()) return {};
  heap.reserve(static_cast<size_t>(k) + 1);
  KNearestImpl(root_, query, k, exclude, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<int64_t> out;
  out.reserve(heap.size());
  for (const HeapEntry& e : heap) out.push_back(e.idx);
  return out;
}

void KdTree::KNearestImpl(int32_t node_id, PointView query, int k,
                          int64_t exclude,
                          std::vector<HeapEntry>& heap) const {
  const Node& node = nodes_[node_id];
  if (node.axis < 0) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int64_t idx = items_[i];
      if (idx == exclude) continue;
      double d2 = SquaredL2(query, (*points_)[idx]);
      if (static_cast<int>(heap.size()) < k) {
        heap.push_back({d2, idx});
        std::push_heap(heap.begin(), heap.end());
      } else if (d2 < heap.front().d2) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d2, idx};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int32_t near = diff < 0 ? node.left : node.right;
  int32_t far = diff < 0 ? node.right : node.left;
  KNearestImpl(near, query, k, exclude, heap);
  double worst = static_cast<int>(heap.size()) < k
                     ? std::numeric_limits<double>::infinity()
                     : heap.front().d2;
  if (diff * diff < worst) {
    KNearestImpl(far, query, k, exclude, heap);
  }
}

std::vector<int64_t> KdTree::WithinRadius(PointView query,
                                          double radius) const {
  std::vector<int64_t> out;
  if (items_.empty() || radius < 0) return out;
  int64_t count = 0;
  RadiusImpl(root_, query, radius * radius, &out, &count, -1);
  return out;
}

int64_t KdTree::CountWithinRadius(PointView query, double radius,
                                  int64_t cap) const {
  if (items_.empty() || radius < 0) return 0;
  int64_t count = 0;
  RadiusImpl(root_, query, radius * radius, nullptr, &count, cap);
  return count;
}

std::vector<int64_t> KdTree::WithinRadiusMetric(PointView query,
                                                double radius,
                                                Metric metric) const {
  if (metric == Metric::kL2) return WithinRadius(query, radius);
  std::vector<int64_t> out;
  if (items_.empty() || radius < 0) return out;
  int64_t count = 0;
  RadiusMetricImpl(root_, query, radius, metric, &out, &count, -1);
  return out;
}

int64_t KdTree::CountWithinRadiusMetric(PointView query, double radius,
                                        Metric metric, int64_t cap) const {
  if (metric == Metric::kL2) return CountWithinRadius(query, radius, cap);
  if (items_.empty() || radius < 0) return 0;
  int64_t count = 0;
  RadiusMetricImpl(root_, query, radius, metric, nullptr, &count, cap);
  return count;
}

void KdTree::RadiusMetricImpl(int32_t node_id, PointView query,
                              double radius, Metric metric,
                              std::vector<int64_t>* out, int64_t* count,
                              int64_t cap) const {
  if (cap >= 0 && *count > cap) return;
  const Node& node = nodes_[node_id];
  if (node.axis < 0) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int64_t idx = items_[i];
      if (Distance(query, (*points_)[idx], metric) <= radius) {
        ++*count;
        if (out != nullptr) out->push_back(idx);
        if (cap >= 0 && *count > cap) return;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int32_t near = diff < 0 ? node.left : node.right;
  int32_t far = diff < 0 ? node.right : node.left;
  RadiusMetricImpl(near, query, radius, metric, out, count, cap);
  // The single-axis offset lower-bounds L2, L1 and Linf distances alike.
  if (std::abs(diff) <= radius) {
    RadiusMetricImpl(far, query, radius, metric, out, count, cap);
  }
}

void KdTree::RadiusImpl(int32_t node_id, PointView query, double r2,
                        std::vector<int64_t>* out, int64_t* count,
                        int64_t cap) const {
  if (cap >= 0 && *count > cap) return;
  const Node& node = nodes_[node_id];
  if (node.axis < 0) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int64_t idx = items_[i];
      if (SquaredL2(query, (*points_)[idx]) <= r2) {
        ++*count;
        if (out != nullptr) out->push_back(idx);
        if (cap >= 0 && *count > cap) return;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int32_t near = diff < 0 ? node.left : node.right;
  int32_t far = diff < 0 ? node.right : node.left;
  RadiusImpl(near, query, r2, out, count, cap);
  if (diff * diff <= r2) {
    RadiusImpl(far, query, r2, out, count, cap);
  }
}

}  // namespace dbs::data
