#include "data/dataset.h"

#include <algorithm>

namespace dbs::data {

InMemoryScan::InMemoryScan(const PointSet* points, int64_t batch_rows)
    : points_(points), batch_rows_(batch_rows) {
  DBS_CHECK(points != nullptr);
  DBS_CHECK(batch_rows > 0);
}

void InMemoryScan::Reset() {
  cursor_ = 0;
  started_ = true;
  BumpPass();
}

bool InMemoryScan::NextBatch(ScanBatch* batch) {
  DBS_CHECK_MSG(started_, "Reset() must be called before NextBatch()");
  if (cursor_ >= points_->size()) return false;
  int64_t count = std::min(batch_rows_, points_->size() - cursor_);
  batch->rows = points_->flat().data() +
                cursor_ * static_cast<int64_t>(points_->dim());
  batch->count = count;
  cursor_ += count;
  return true;
}

[[nodiscard]] Result<PointSet> ReadAll(DataScan& scan) {
  PointSet out(scan.dim());
  out.Reserve(scan.size());
  scan.Reset();
  ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      out.Append(batch.point(i, scan.dim()));
    }
  }
  return out;
}

}  // namespace dbs::data
