// Binary on-disk dataset format (.dbsf) and the streaming FileScan.
//
// Layout: a fixed 32-byte header (magic, version, dim, row count) followed
// by row-major float64 coordinates. The format exists so the multi-pass
// samplers can be exercised against genuinely out-of-core data: FileScan
// reads fixed-size batches and never materializes the dataset.

#ifndef DBS_DATA_DATASET_IO_H_
#define DBS_DATA_DATASET_IO_H_

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::data {

inline constexpr uint32_t kDatasetMagic = 0x46534244;  // "DBSF" little-endian
inline constexpr uint32_t kDatasetVersion = 1;

// Writes `points` to `path` in .dbsf format, overwriting any existing file.
[[nodiscard]] Status WriteDatasetFile(const std::string& path, const PointSet& points);

// Reads a whole .dbsf file into memory.
[[nodiscard]] Result<PointSet> ReadDatasetFile(const std::string& path);

// Streaming scan over a .dbsf file. Owns the file handle.
//
// With `double_buffered` set, a persistent background thread prefetches the
// NEXT chunk into a second buffer while the caller processes the current
// one, overlapping file I/O with evaluation (the out-of-core samplers'
// density batches). Batches are byte-identical to the synchronous scan:
// the same chunks come back in the same order from the same buffers-swap
// discipline, only WHEN the freads run moves. Header/payload validation
// happens in Open, before the thread exists, so malformed files surface the
// same Status in both modes; a file truncated mid-scan aborts with the same
// DBS_CHECK message, raised on the calling thread. FileScan remains
// single-consumer: NextBatch/Reset must not be called concurrently.
class FileScan : public DataScan {
 public:
  // Opens `path`, validating the header.
  [[nodiscard]] static Result<std::unique_ptr<FileScan>> Open(const std::string& path,
                                                int64_t batch_rows = 4096,
                                                bool double_buffered = false);

  ~FileScan() override;

  FileScan(const FileScan&) = delete;
  FileScan& operator=(const FileScan&) = delete;

  int dim() const override { return dim_; }
  int64_t size() const override { return rows_; }
  bool double_buffered() const { return double_buffered_; }
  void Reset() override;
  bool NextBatch(ScanBatch* batch) override;

 private:
  FileScan(std::FILE* file, int dim, int64_t rows, int64_t batch_rows,
           bool double_buffered);

  // Body of the prefetch thread: waits for a fill request, freads the next
  // chunk into prefetch_buffer_, reports completion. The file position is
  // handed back and forth through the fill handshake, so exactly one thread
  // touches file_ at a time.
  void PrefetchLoop();
  // Asks the prefetch thread for the next `want` rows (mu_ must be held).
  void RequestFill(int64_t want);

  std::FILE* file_;
  int dim_;
  int64_t rows_;
  int64_t batch_rows_;
  int64_t cursor_ = 0;
  bool started_ = false;
  std::vector<double> buffer_;

  // Double-buffering state. The consumer owns buffer_; the prefetch thread
  // owns prefetch_buffer_ while a fill is in flight; NextBatch swaps them
  // after the handshake, so a returned batch stays valid until the next
  // NextBatch/Reset, exactly like the synchronous mode.
  bool double_buffered_ = false;
  std::vector<double> prefetch_buffer_;
  std::thread prefetch_thread_;
  // Guards the fill handshake state below (fill_requested_/fill_done_/
  // shutdown_/fill_want_/fill_got_). Leaf lock: never held while calling
  // out or taking another lock.
  std::mutex mu_;
  std::condition_variable fill_requested_cv_;
  std::condition_variable fill_done_cv_;
  bool fill_requested_ = false;
  bool fill_done_ = false;
  bool shutdown_ = false;
  int64_t fill_want_ = 0;
  size_t fill_got_ = 0;
};

}  // namespace dbs::data

#endif  // DBS_DATA_DATASET_IO_H_
