// Binary on-disk dataset format (.dbsf) and the streaming FileScan.
//
// Layout: a fixed 32-byte header (magic, version, dim, row count) followed
// by row-major float64 coordinates. The format exists so the multi-pass
// samplers can be exercised against genuinely out-of-core data: FileScan
// reads fixed-size batches and never materializes the dataset.

#ifndef DBS_DATA_DATASET_IO_H_
#define DBS_DATA_DATASET_IO_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::data {

inline constexpr uint32_t kDatasetMagic = 0x46534244;  // "DBSF" little-endian
inline constexpr uint32_t kDatasetVersion = 1;

// Writes `points` to `path` in .dbsf format, overwriting any existing file.
Status WriteDatasetFile(const std::string& path, const PointSet& points);

// Reads a whole .dbsf file into memory.
Result<PointSet> ReadDatasetFile(const std::string& path);

// Streaming scan over a .dbsf file. Owns the file handle.
class FileScan : public DataScan {
 public:
  // Opens `path`, validating the header.
  static Result<std::unique_ptr<FileScan>> Open(const std::string& path,
                                                int64_t batch_rows = 4096);

  ~FileScan() override;

  FileScan(const FileScan&) = delete;
  FileScan& operator=(const FileScan&) = delete;

  int dim() const override { return dim_; }
  int64_t size() const override { return rows_; }
  void Reset() override;
  bool NextBatch(ScanBatch* batch) override;

 private:
  FileScan(std::FILE* file, int dim, int64_t rows, int64_t batch_rows);

  std::FILE* file_;
  int dim_;
  int64_t rows_;
  int64_t batch_rows_;
  int64_t cursor_ = 0;
  bool started_ = false;
  std::vector<double> buffer_;
};

}  // namespace dbs::data

#endif  // DBS_DATA_DATASET_IO_H_
