// Multi-pass dataset scanning.
//
// The paper's efficiency claims are phrased in dataset passes (one pass to
// build the estimator, one or two more to sample / verify). DataScan is the
// abstraction those pass counts are measured against: a resettable forward
// scan that yields batches of rows. InMemoryScan adapts a PointSet;
// FileScan (dataset_io.h) streams the binary on-disk format. Every Reset()
// after the first increments passes(), so experiments can report exactly how
// many times the data was read.

#ifndef DBS_DATA_DATASET_H_
#define DBS_DATA_DATASET_H_

#include <cstdint>

#include "data/point_set.h"
#include "util/status.h"

namespace dbs::data {

// A batch of rows handed out by a scan. Points are valid until the next
// NextBatch/Reset call on the owning scan.
struct ScanBatch {
  const double* rows = nullptr;  // row-major, count * dim doubles
  int64_t count = 0;

  PointView point(int64_t i, int dim) const {
    DBS_DCHECK(i >= 0 && i < count);
    return PointView(rows + i * dim, dim);
  }
};

// Resettable forward scan over a dataset.
class DataScan {
 public:
  virtual ~DataScan() = default;

  virtual int dim() const = 0;

  // Total number of rows, when known up-front (file and in-memory scans
  // always know it; the value is needed by Bernoulli samplers).
  virtual int64_t size() const = 0;

  // Rewinds to the beginning. The first call (before any NextBatch) starts
  // pass 1; each later call starts a new pass.
  virtual void Reset() = 0;

  // Fills `batch` with the next chunk of rows; returns false at end of scan.
  virtual bool NextBatch(ScanBatch* batch) = 0;

  // Number of passes started so far.
  int passes() const { return passes_; }

 protected:
  void BumpPass() { ++passes_; }

 private:
  int passes_ = 0;
};

// Scan over an in-memory PointSet (not owned; must outlive the scan).
class InMemoryScan : public DataScan {
 public:
  explicit InMemoryScan(const PointSet* points, int64_t batch_rows = 4096);

  int dim() const override { return points_->dim(); }
  int64_t size() const override { return points_->size(); }
  void Reset() override;
  bool NextBatch(ScanBatch* batch) override;

 private:
  const PointSet* points_;
  int64_t batch_rows_;
  int64_t cursor_ = 0;
  bool started_ = false;
};

// Reads the entire scan into a PointSet (one pass).
[[nodiscard]] Result<PointSet> ReadAll(DataScan& scan);

}  // namespace dbs::data

#endif  // DBS_DATA_DATASET_H_
