// Flat, cache-friendly storage for d-dimensional points.
//
// A PointSet stores points row-major in a single contiguous buffer; a
// PointView is a non-owning (pointer, dim) pair used throughout the library
// to pass points without copying. All higher-level structures (samples,
// clusters, kd-trees, density estimators) are built on these two types.

#ifndef DBS_DATA_POINT_SET_H_
#define DBS_DATA_POINT_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/check.h"

namespace dbs::data {

// Non-owning view of one d-dimensional point.
class PointView {
 public:
  PointView() : coords_(nullptr), dim_(0) {}
  PointView(const double* coords, int dim) : coords_(coords), dim_(dim) {}

  int dim() const { return dim_; }
  const double* data() const { return coords_; }

  double operator[](int j) const {
    DBS_DCHECK(j >= 0 && j < dim_);
    return coords_[j];
  }

  const double* begin() const { return coords_; }
  const double* end() const { return coords_ + dim_; }

  // Copies the coordinates into an owning vector.
  std::vector<double> ToVector() const {
    return std::vector<double>(coords_, coords_ + dim_);
  }

 private:
  const double* coords_;
  int dim_;
};

// Owning set of n points in d dimensions, stored row-major.
class PointSet {
 public:
  PointSet() : dim_(0) {}
  explicit PointSet(int dim) : dim_(dim) { DBS_CHECK(dim > 0); }
  PointSet(int dim, std::initializer_list<double> flat);

  int dim() const { return dim_; }
  int64_t size() const {
    return dim_ == 0 ? 0 : static_cast<int64_t>(flat_.size()) / dim_;
  }
  bool empty() const { return flat_.empty(); }

  void Reserve(int64_t num_points) {
    if (dim_ > 0) flat_.reserve(static_cast<size_t>(num_points) * dim_);
  }

  // Appends a point; `coords` must have exactly dim() entries.
  void Append(const double* coords);
  void Append(PointView p) {
    DBS_CHECK(p.dim() == dim_);
    Append(p.data());
  }
  void Append(const std::vector<double>& coords) {
    DBS_CHECK(static_cast<int>(coords.size()) == dim_);
    Append(coords.data());
  }

  // Appends all points of `other` (dims must match; sets dim if empty).
  void AppendAll(const PointSet& other);

  PointView operator[](int64_t i) const {
    DBS_DCHECK(i >= 0 && i < size());
    return PointView(flat_.data() + i * dim_, dim_);
  }

  // Mutable access to the i-th point's coordinates.
  double* MutableRow(int64_t i) {
    DBS_DCHECK(i >= 0 && i < size());
    return flat_.data() + i * dim_;
  }

  const std::vector<double>& flat() const { return flat_; }

  void Clear() { flat_.clear(); }

  // Returns a new PointSet containing rows at the given indices, in order.
  PointSet Gather(const std::vector<int64_t>& indices) const;

 private:
  int dim_;
  std::vector<double> flat_;
};

}  // namespace dbs::data

#endif  // DBS_DATA_POINT_SET_H_
