// Range-partitioned scanning for sharded builds (DESIGN.md §12).
//
// RangeScan restricts an underlying DataScan to a half-open [row_begin,
// row_end) slice, so N workers can each stream a disjoint shard of the same
// file. Rows are delivered in the base scan's order as views into the base
// scan's batches: a batch that straddles a range boundary is clipped, one
// that falls entirely inside is passed through untouched. A full-range
// RangeScan therefore yields byte-identical batch boundaries to the base
// scan — which is what keeps the shards=1 build path bitwise identical to
// the unsharded one.

#ifndef DBS_DATA_RANGE_SCAN_H_
#define DBS_DATA_RANGE_SCAN_H_

#include <cstdint>

#include "data/dataset.h"

namespace dbs::data {

// Adapts `base` (not owned; must outlive the RangeScan) to the row slice
// [row_begin, row_end). Requires 0 <= row_begin <= row_end <= base->size().
// The adapter drives the base scan exclusively: do not interleave NextBatch
// calls on the base while a RangeScan pass is in flight.
class RangeScan : public DataScan {
 public:
  RangeScan(DataScan* base, int64_t row_begin, int64_t row_end);

  int dim() const override { return base_->dim(); }
  int64_t size() const override { return row_end_ - row_begin_; }
  void Reset() override;
  bool NextBatch(ScanBatch* batch) override;

 private:
  DataScan* base_;
  int64_t row_begin_;
  int64_t row_end_;

  bool started_ = false;
  bool positioned_ = false;  // pending_ holds the batch containing cursor_
  int64_t cursor_ = 0;       // absolute row index of the next row to serve
  ScanBatch pending_;        // current base batch
  int64_t pending_start_ = 0;  // absolute row index of pending_.rows[0]
};

}  // namespace dbs::data

#endif  // DBS_DATA_RANGE_SCAN_H_
