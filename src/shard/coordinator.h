// In-process sharded build coordinator (DESIGN.md §12).
//
// ShardCoordinator runs the full approximation pipeline — KDE fit, the
// sampler's two- or one-pass algorithms, DB(p,k)-outlier detection — as N
// independent shard builds over disjoint row ranges, then tree-reduces the
// mergeable partial states. Each public method is one or two fan-out
// rounds:
//
//   BuildKde        FitPartial per shard -> MergePartialKde -> FinalizeKde
//   SampleTwoPass   NormalizerPartial round, then SamplePartial round
//   SampleOnePass   estimator-derived k_a, then one SamplePartial round
//   DetectOutliers  scoring round, then neighbor-counting round
//
// Every shard task opens its own scan through the caller's factory (so N
// file handles stream N disjoint slices concurrently) and runs its partial
// build sequentially; parallelism is ACROSS shards, fanned out over an
// optional parallel::BatchExecutor. Determinism guarantees:
//
//   * shards=1 output is bitwise identical to the unsharded entry points
//     (Kde::Fit, BiasedSampler::Run/RunOnePass, DetectOutliersApproximate),
//     because those are implemented as the single-shard partial pipeline.
//   * For any shard count, results are bitwise independent of the worker
//     count and of merge order (the tree-reduce unions per-shard summaries;
//     all arithmetic happens once, in ascending shard order, at finalize).
//   * Outlier detection is additionally bitwise identical to the unsharded
//     detector at ANY shard count — both passes are RNG-free and row
//     ranges are contiguous, so candidate lists and integer tallies
//     recompose exactly.

#ifndef DBS_SHARD_COORDINATOR_H_
#define DBS_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "core/biased_sampler.h"
#include "core/sample.h"
#include "data/dataset.h"
#include "density/kde.h"
#include "density/kde_partial.h"
#include "outlier/kde_detector.h"
#include "parallel/batch_executor.h"
#include "util/shard.h"
#include "util/status.h"

namespace dbs::shard {

struct ShardCoordinatorOptions {
  // Number of shards; clamped to [1, total_rows].
  int64_t shards = 1;
  // Optional pool the shard tasks are fanned out over (not owned; must
  // outlive the coordinator). Each shard's work runs sequentially inside
  // its task — nested executor use from a worker thread would deadlock the
  // pool — so per-shard estimator options must NOT carry an executor; the
  // coordinator strips any configured executor from the options it passes
  // down. Under queue backpressure the fan-out falls back to running the
  // shards sequentially on the calling thread: same bytes, less overlap.
  parallel::BatchExecutor* executor = nullptr;
};

class ShardCoordinator {
 public:
  // Produces a fresh scan over the WHOLE dataset. Called once per shard
  // per pass (plus once up-front to learn the dataset size), possibly
  // concurrently from executor workers.
  using ScanFactory =
      std::function<Result<std::unique_ptr<data::DataScan>>()>;

  ShardCoordinator(ScanFactory factory,
                   const ShardCoordinatorOptions& options);

  // Sharded Kde::Fit.
  [[nodiscard]] Result<density::Kde> BuildKde(const density::KdeOptions& options) const;

  // Sharded BiasedSampler::Run (exact normalizer pass, then sampling pass).
  [[nodiscard]] Result<core::BiasedSample> SampleTwoPass(
      const density::DensityEstimator& estimator,
      const core::BiasedSamplerOptions& options) const;

  // Sharded BiasedSampler::RunOnePass (k_a estimated from kernel centers).
  [[nodiscard]] Result<core::BiasedSample> SampleOnePass(
      const density::Kde& kde,
      const core::BiasedSamplerOptions& options) const;

  // Sharded DetectOutliersApproximate.
  [[nodiscard]] Result<outlier::OutlierReport> DetectOutliers(
      const density::DensityEstimator& estimator,
      const outlier::DbOutlierParams& params,
      const outlier::KdeDetectorOptions& options) const;

 private:
  // One shard's partial build: receives its slice scan and shard identity.
  template <typename Partial>
  using ShardFn =
      std::function<Result<Partial>(data::DataScan&, const ShardInfo&)>;

  // Opens the dataset once to learn its size; returns the clamped shard
  // count for it.
  [[nodiscard]] Result<int64_t> ResolveShards(int64_t* total_rows) const;

  template <typename Partial>
  [[nodiscard]] Result<std::vector<Partial>> RunShards(int64_t num_shards,
                                         int64_t total_rows,
                                         const ShardFn<Partial>& fn) const;

  ScanFactory factory_;
  ShardCoordinatorOptions options_;
};

}  // namespace dbs::shard

#endif  // DBS_SHARD_COORDINATOR_H_
