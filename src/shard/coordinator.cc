#include "shard/coordinator.h"

#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "data/range_scan.h"

namespace dbs::shard {
namespace {

// Pairwise tree reduction. Correctness does not depend on the pairing: the
// merge is a sorted disjoint union of per-shard summaries (util/shard.h),
// so any reduction shape yields the same state. The tree shape only bounds
// the reduction depth at log2(shards) for the multi-process collector.
template <typename Partial, typename MergeFn>
[[nodiscard]] Result<Partial> TreeReduce(std::vector<Partial> parts, const MergeFn& merge) {
  while (parts.size() > 1) {
    std::vector<Partial> next;
    next.reserve((parts.size() + 1) / 2);
    for (size_t i = 0; i + 1 < parts.size(); i += 2) {
      DBS_ASSIGN_OR_RETURN(
          Partial merged,
          merge(std::move(parts[i]), std::move(parts[i + 1])));
      next.push_back(std::move(merged));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return std::move(parts.front());
}

}  // namespace

ShardCoordinator::ShardCoordinator(ScanFactory factory,
                                   const ShardCoordinatorOptions& options)
    : factory_(std::move(factory)), options_(options) {}

Result<int64_t> ShardCoordinator::ResolveShards(int64_t* total_rows) const {
  DBS_ASSIGN_OR_RETURN(std::unique_ptr<data::DataScan> scan, factory_());
  *total_rows = scan->size();
  int64_t shards = options_.shards < 1 ? 1 : options_.shards;
  if (*total_rows > 0 && shards > *total_rows) shards = *total_rows;
  return shards;
}

template <typename Partial>
Result<std::vector<Partial>> ShardCoordinator::RunShards(
    int64_t num_shards, int64_t total_rows,
    const ShardFn<Partial>& fn) const {
  std::vector<Partial> parts(static_cast<size_t>(num_shards));
  std::vector<Status> statuses(static_cast<size_t>(num_shards),
                               Status::Ok());
  auto run_one = [&](int64_t s) {
    auto scan_or = factory_();
    if (!scan_or.ok()) {
      statuses[static_cast<size_t>(s)] = scan_or.status();
      return;
    }
    std::unique_ptr<data::DataScan> scan = std::move(*scan_or);
    if (scan->size() != total_rows) {
      statuses[static_cast<size_t>(s)] = Status::InvalidArgument(
          "dataset size changed between sharded passes");
      return;
    }
    const RowRange range = ShardRowRange(total_rows, num_shards, s);
    data::RangeScan slice(scan.get(), range.begin, range.end);
    ShardInfo info;
    info.shard = s;
    info.num_shards = num_shards;
    info.total_rows = total_rows;
    auto part_or = fn(slice, info);
    if (!part_or.ok()) {
      statuses[static_cast<size_t>(s)] = part_or.status();
      return;
    }
    parts[static_cast<size_t>(s)] = std::move(*part_or);
  };

  bool ran_parallel = false;
  if (options_.executor != nullptr && num_shards > 1) {
    // Fan the shard tasks out as one all-or-nothing admission with our own
    // completion latch. ParallelFor is not used here: its min_shard floor
    // would collapse a small shard count into one task.
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining = num_shards;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(num_shards));
    for (int64_t s = 0; s < num_shards; ++s) {
      tasks.push_back([&, s] {
        run_one(s);
        {
          std::lock_guard<std::mutex> lock(mu);
          --remaining;
        }
        done.notify_one();
      });
    }
    if (options_.executor->TrySubmitAll(std::move(tasks)).ok()) {
      std::unique_lock<std::mutex> lock(mu);
      done.wait(lock, [&] { return remaining == 0; });
      ran_parallel = true;
    }
    // Backpressure (or shutdown): fall through to the sequential fan-out —
    // identical bytes, no failure surfaced to the caller.
  }
  if (!ran_parallel) {
    for (int64_t s = 0; s < num_shards; ++s) run_one(s);
  }

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return parts;
}

Result<density::Kde> ShardCoordinator::BuildKde(
    const density::KdeOptions& options) const {
  int64_t total_rows = 0;
  DBS_ASSIGN_OR_RETURN(int64_t num_shards, ResolveShards(&total_rows));
  ShardFn<density::PartialKde> fit =
      [&options](data::DataScan& scan, const ShardInfo& info) {
        return density::Kde::FitPartial(scan, options, info);
      };
  DBS_ASSIGN_OR_RETURN(
      std::vector<density::PartialKde> parts,
      RunShards<density::PartialKde>(num_shards, total_rows, fit));
  DBS_ASSIGN_OR_RETURN(
      density::PartialKde merged,
      TreeReduce(std::move(parts),
                 [](density::PartialKde x, density::PartialKde y) {
                   return density::MergePartialKde(std::move(x),
                                                   std::move(y));
                 }));
  return density::FinalizeKde(std::move(merged), options);
}

Result<core::BiasedSample> ShardCoordinator::SampleTwoPass(
    const density::DensityEstimator& estimator,
    const core::BiasedSamplerOptions& options) const {
  int64_t total_rows = 0;
  DBS_ASSIGN_OR_RETURN(int64_t num_shards, ResolveShards(&total_rows));
  core::BiasedSamplerOptions shard_options = options;
  shard_options.executor = nullptr;  // per-shard work runs sequentially
  const core::BiasedSampler sampler(shard_options);

  // Round 1: exact normalizer.
  ShardFn<core::PartialNormalizer> normalize =
      [&](data::DataScan& scan, const ShardInfo& info) {
        return sampler.NormalizerPartial(scan, estimator, info);
      };
  DBS_ASSIGN_OR_RETURN(std::vector<core::PartialNormalizer> norm_parts,
                       RunShards<core::PartialNormalizer>(
                           num_shards, total_rows, normalize));
  DBS_ASSIGN_OR_RETURN(
      core::PartialNormalizer norm_merged,
      TreeReduce(std::move(norm_parts),
                 [](core::PartialNormalizer x, core::PartialNormalizer y) {
                   return core::MergePartialNormalizers(std::move(x),
                                                        std::move(y));
                 }));
  DBS_ASSIGN_OR_RETURN(double k_a,
                       sampler.FinalizeNormalizer(norm_merged));
  if (k_a <= 0) {
    return Status::Internal("normalizer k_a is not positive");
  }

  // Round 2: Bernoulli sampling against the global normalizer.
  ShardFn<core::PartialSample> draw =
      [&](data::DataScan& scan, const ShardInfo& info) {
        return sampler.SamplePartial(scan, estimator, k_a, info);
      };
  DBS_ASSIGN_OR_RETURN(
      std::vector<core::PartialSample> sample_parts,
      RunShards<core::PartialSample>(num_shards, total_rows, draw));
  DBS_ASSIGN_OR_RETURN(
      core::PartialSample sample_merged,
      TreeReduce(std::move(sample_parts),
                 [](core::PartialSample x, core::PartialSample y) {
                   return core::MergePartialSamples(std::move(x),
                                                    std::move(y));
                 }));
  return sampler.FinalizeSample(std::move(sample_merged), k_a);
}

Result<core::BiasedSample> ShardCoordinator::SampleOnePass(
    const density::Kde& kde,
    const core::BiasedSamplerOptions& options) const {
  if (options.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  int64_t total_rows = 0;
  DBS_ASSIGN_OR_RETURN(int64_t num_shards, ResolveShards(&total_rows));
  if (total_rows == 0) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  core::BiasedSamplerOptions shard_options = options;
  shard_options.executor = nullptr;
  const core::BiasedSampler sampler(shard_options);

  // k_a ~= n * E[f^a] from the kernel centers (no dataset pass). Evaluated
  // on the calling thread, where the coordinator's executor is safe to use;
  // MeanDensityPow is bitwise identical with or without one.
  const double k_a = static_cast<double>(total_rows) *
                     kde.MeanDensityPow(options.a, options_.executor);
  if (k_a <= 0) {
    return Status::Internal("estimated normalizer k_a is not positive");
  }

  ShardFn<core::PartialSample> draw =
      [&](data::DataScan& scan, const ShardInfo& info) {
        return sampler.SamplePartial(scan, kde, k_a, info);
      };
  DBS_ASSIGN_OR_RETURN(
      std::vector<core::PartialSample> sample_parts,
      RunShards<core::PartialSample>(num_shards, total_rows, draw));
  DBS_ASSIGN_OR_RETURN(
      core::PartialSample sample_merged,
      TreeReduce(std::move(sample_parts),
                 [](core::PartialSample x, core::PartialSample y) {
                   return core::MergePartialSamples(std::move(x),
                                                    std::move(y));
                 }));
  return sampler.FinalizeSample(std::move(sample_merged), k_a);
}

Result<outlier::OutlierReport> ShardCoordinator::DetectOutliers(
    const density::DensityEstimator& estimator,
    const outlier::DbOutlierParams& params,
    const outlier::KdeDetectorOptions& options) const {
  int64_t total_rows = 0;
  DBS_ASSIGN_OR_RETURN(int64_t num_shards, ResolveShards(&total_rows));
  outlier::KdeDetectorOptions shard_options = options;
  shard_options.executor = nullptr;

  // Round 1: score rows, keep likely outliers under global row indices.
  ShardFn<outlier::PartialOutlierCandidates> score =
      [&](data::DataScan& scan, const ShardInfo& info) {
        return outlier::ScoreOutlierCandidatesPartial(
            scan, estimator, params, shard_options, info);
      };
  DBS_ASSIGN_OR_RETURN(
      std::vector<outlier::PartialOutlierCandidates> cand_parts,
      RunShards<outlier::PartialOutlierCandidates>(num_shards, total_rows,
                                                   score));
  DBS_ASSIGN_OR_RETURN(
      outlier::PartialOutlierCandidates cand_merged,
      TreeReduce(std::move(cand_parts),
                 [&options](outlier::PartialOutlierCandidates x,
                            outlier::PartialOutlierCandidates y) {
                   return outlier::MergeOutlierCandidates(
                       std::move(x), std::move(y), options.max_candidates);
                 }));
  DBS_ASSIGN_OR_RETURN(
      outlier::OutlierCandidates candidates,
      outlier::FinalizeOutlierCandidates(std::move(cand_merged)));
  if (candidates.points.empty()) {
    outlier::OutlierReport report;
    report.candidates_checked = 0;
    report.passes = 1;
    return report;
  }

  // Round 2: exact neighbor tallies of the merged candidate set.
  ShardFn<outlier::PartialNeighborCounts> count =
      [&](data::DataScan& scan, const ShardInfo& info) {
        return outlier::CountCandidateNeighborsPartial(scan, candidates,
                                                       params, info);
      };
  DBS_ASSIGN_OR_RETURN(
      std::vector<outlier::PartialNeighborCounts> count_parts,
      RunShards<outlier::PartialNeighborCounts>(num_shards, total_rows,
                                                count));
  DBS_ASSIGN_OR_RETURN(
      outlier::PartialNeighborCounts count_merged,
      TreeReduce(std::move(count_parts),
                 [](outlier::PartialNeighborCounts x,
                    outlier::PartialNeighborCounts y) {
                   return outlier::MergeNeighborCounts(std::move(x),
                                                       std::move(y));
                 }));
  return outlier::FinalizeOutlierReport(candidates, count_merged, params);
}

}  // namespace dbs::shard
