#include "outlier/kde_detector.h"

#include <utility>
#include <vector>

#include "data/kd_tree.h"

namespace dbs::outlier {
namespace {

[[nodiscard]] Status ValidateArgs(const data::DataScan& scan,
                    const density::DensityEstimator& estimator,
                    const DbOutlierParams& params,
                    const KdeDetectorOptions& options) {
  if (scan.size() == 0) {
    return Status::InvalidArgument("cannot detect outliers in an empty set");
  }
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  if (params.radius < 0) {
    return Status::InvalidArgument("radius cannot be negative");
  }
  if (params.max_neighbor_fraction > 1) {
    return Status::InvalidArgument("neighbor fraction cannot exceed 1");
  }
  if (params.max_neighbor_fraction < 0 && params.max_neighbors < 0) {
    return Status::InvalidArgument("neighbor bound cannot be negative");
  }
  if (options.candidate_slack <= 0) {
    return Status::InvalidArgument("candidate_slack must be positive");
  }
  if (options.qmc_samples <= 0) {
    return Status::InvalidArgument("qmc_samples must be positive");
  }
  if (options.max_candidates <= 0) {
    return Status::InvalidArgument("max_candidates must be positive");
  }
  return Status::Ok();
}

}  // namespace

[[nodiscard]] Result<OutlierReport> DetectOutliersApproximate(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  // Detection is the single-shard instance of the partial pipeline
  // (DESIGN.md §12): the scoring and counting loops below moved verbatim
  // into the partial functions, so the sharded detector at any shard count
  // and this entry point produce identical reports.
  DBS_RETURN_IF_ERROR(ValidateArgs(scan, estimator, params, options));
  ShardInfo info;
  info.total_rows = scan.size();
  DBS_ASSIGN_OR_RETURN(
      PartialOutlierCandidates cand_partial,
      ScoreOutlierCandidatesPartial(scan, estimator, params, options, info));
  DBS_ASSIGN_OR_RETURN(OutlierCandidates candidates,
                       FinalizeOutlierCandidates(std::move(cand_partial)));
  if (candidates.points.empty()) {
    OutlierReport report;
    report.candidates_checked = 0;
    report.passes = 1;
    return report;
  }
  DBS_ASSIGN_OR_RETURN(
      PartialNeighborCounts counts,
      CountCandidateNeighborsPartial(scan, candidates, params, info));
  return FinalizeOutlierReport(candidates, counts, params);
}

[[nodiscard]] Result<PartialOutlierCandidates> ScoreOutlierCandidatesPartial(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options,
    const ShardInfo& info) {
  if (info.total_rows == 0) {
    return Status::InvalidArgument("cannot detect outliers in an empty set");
  }
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  if (params.radius < 0) {
    return Status::InvalidArgument("radius cannot be negative");
  }
  if (params.max_neighbor_fraction > 1) {
    return Status::InvalidArgument("neighbor fraction cannot exceed 1");
  }
  if (params.max_neighbor_fraction < 0 && params.max_neighbors < 0) {
    return Status::InvalidArgument("neighbor bound cannot be negative");
  }
  if (options.candidate_slack <= 0) {
    return Status::InvalidArgument("candidate_slack must be positive");
  }
  if (options.qmc_samples <= 0) {
    return Status::InvalidArgument("qmc_samples must be positive");
  }
  if (options.max_candidates <= 0) {
    return Status::InvalidArgument("max_candidates must be positive");
  }
  DBS_RETURN_IF_ERROR(ValidateShardInfo(info));
  const RowRange range =
      ShardRowRange(info.total_rows, info.num_shards, info.shard);
  if (scan.size() != range.size()) {
    return Status::InvalidArgument(
        "scan does not cover the shard's row range");
  }

  const int dim = scan.dim();
  const int64_t p = params.NeighborBound(info.total_rows);
  const double threshold =
      options.candidate_slack * static_cast<double>(p + 1);
  const BallIntegrator integrator(options.integration, dim,
                                  options.qmc_samples, params.metric);

  // Shard slice of the scoring pass: score every row; keep the likely
  // outliers under GLOBAL row indices. Scores for each scan batch are
  // computed through the batched (optionally multicore) integrator; the
  // threshold sweep stays sequential in scan order so the candidate list is
  // identical however the scores were computed.
  CandidateShardPart part;
  part.shard = info.shard;
  part.num_shards = info.num_shards;
  part.total_rows = info.total_rows;
  part.candidates = data::PointSet(dim);
  std::vector<double> scores;
  scan.Reset();
  data::ScanBatch batch;
  int64_t row = range.begin;
  while (scan.NextBatch(&batch)) {
    scores.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(integrator.IntegrateExcludingSelfBatch(
        estimator, batch.rows, batch.count, params.radius, scores.data(),
        options.executor));
    for (int64_t i = 0; i < batch.count; ++i, ++row) {
      data::PointView x = batch.point(i, dim);
      double expected = scores[static_cast<size_t>(i)];
      if (expected <= threshold) {
        if (static_cast<int64_t>(part.candidate_rows.size()) >=
            options.max_candidates) {
          return Status::FailedPrecondition(
              "candidate set exceeded max_candidates; lower the slack or "
              "raise p/k");
        }
        part.candidates.Append(x);
        part.candidate_rows.push_back(row);
      }
    }
    part.rows += batch.count;
  }

  PartialOutlierCandidates partial;
  partial.parts.push_back(std::move(part));
  return partial;
}

[[nodiscard]] Result<PartialOutlierCandidates> MergeOutlierCandidates(
    PartialOutlierCandidates a, PartialOutlierCandidates b,
    int64_t max_candidates) {
  if (!a.parts.empty() && !b.parts.empty() &&
      a.parts.front().candidates.dim() != b.parts.front().candidates.dim()) {
    return Status::InvalidArgument(
        "cannot merge candidate states of different dimensionality");
  }
  DBS_RETURN_IF_ERROR(MergeShardParts(&a.parts, std::move(b.parts)));
  int64_t total = 0;
  for (const CandidateShardPart& part : a.parts) {
    total += static_cast<int64_t>(part.candidate_rows.size());
  }
  if (total > max_candidates) {
    return Status::FailedPrecondition(
        "candidate set exceeded max_candidates; lower the slack or "
        "raise p/k");
  }
  return a;
}

[[nodiscard]] Result<OutlierCandidates> FinalizeOutlierCandidates(
    PartialOutlierCandidates partial) {
  if (partial.parts.empty()) {
    return Status::InvalidArgument("partial candidate state has no shards");
  }
  if (static_cast<int64_t>(partial.parts.size()) !=
      partial.parts.front().num_shards) {
    return Status::InvalidArgument(
        "partial candidate state is incomplete: not every shard is present");
  }
  OutlierCandidates out;
  out.points = std::move(partial.parts.front().candidates);
  out.rows = std::move(partial.parts.front().candidate_rows);
  for (size_t i = 0; i < partial.parts.size(); ++i) {
    if (partial.parts[i].shard != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "partial candidate state is incomplete: not every shard is "
          "present");
    }
    if (i == 0) continue;
    CandidateShardPart& part = partial.parts[i];
    out.points.AppendAll(part.candidates);
    out.rows.insert(out.rows.end(), part.candidate_rows.begin(),
                    part.candidate_rows.end());
  }
  return out;
}

[[nodiscard]] Result<PartialNeighborCounts> CountCandidateNeighborsPartial(
    data::DataScan& scan, const OutlierCandidates& candidates,
    const DbOutlierParams& params, const ShardInfo& info) {
  if (candidates.points.empty()) {
    return Status::InvalidArgument("candidate set is empty");
  }
  if (scan.dim() != candidates.points.dim()) {
    return Status::InvalidArgument(
        "candidate dimensionality does not match the scan");
  }
  DBS_RETURN_IF_ERROR(ValidateShardInfo(info));
  if (scan.size() !=
      ShardRowRange(info.total_rows, info.num_shards, info.shard).size()) {
    return Status::InvalidArgument(
        "scan does not cover the shard's row range");
  }
  const int dim = scan.dim();

  // Shard slice of the verification pass: a kd-tree over the (small)
  // candidate set turns it into "for each of the shard's rows, bump every
  // candidate within radius". Tallies are integers, so summing shard parts
  // reproduces the sequential counts exactly.
  NeighborCountShardPart part;
  part.shard = info.shard;
  part.num_shards = info.num_shards;
  part.total_rows = info.total_rows;
  part.counts.assign(static_cast<size_t>(candidates.points.size()), 0);
  data::KdTree tree(&candidates.points);
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView x = batch.point(i, dim);
      for (int64_t c :
           tree.WithinRadiusMetric(x, params.radius, params.metric)) {
        ++part.counts[static_cast<size_t>(c)];
      }
    }
  }

  PartialNeighborCounts partial;
  partial.parts.push_back(std::move(part));
  return partial;
}

[[nodiscard]] Result<PartialNeighborCounts> MergeNeighborCounts(PartialNeighborCounts a,
                                                  PartialNeighborCounts b) {
  if (!a.parts.empty() && !b.parts.empty() &&
      a.parts.front().counts.size() != b.parts.front().counts.size()) {
    return Status::InvalidArgument(
        "cannot merge neighbor counts over different candidate sets");
  }
  DBS_RETURN_IF_ERROR(MergeShardParts(&a.parts, std::move(b.parts)));
  return a;
}

[[nodiscard]] Result<OutlierReport> FinalizeOutlierReport(
    const OutlierCandidates& candidates, const PartialNeighborCounts& counts,
    const DbOutlierParams& params) {
  if (counts.parts.empty()) {
    return Status::InvalidArgument("partial count state has no shards");
  }
  if (static_cast<int64_t>(counts.parts.size()) !=
      counts.parts.front().num_shards) {
    return Status::InvalidArgument(
        "partial count state is incomplete: not every shard is present");
  }
  const size_t num_candidates =
      static_cast<size_t>(candidates.points.size());
  std::vector<int64_t> total(num_candidates, 0);
  for (size_t i = 0; i < counts.parts.size(); ++i) {
    const NeighborCountShardPart& part = counts.parts[i];
    if (part.shard != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "partial count state is incomplete: not every shard is present");
    }
    if (part.counts.size() != num_candidates) {
      return Status::InvalidArgument(
          "neighbor counts do not match the candidate set");
    }
    for (size_t c = 0; c < num_candidates; ++c) total[c] += part.counts[c];
  }

  const int64_t p =
      params.NeighborBound(counts.parts.front().total_rows);
  OutlierReport report;
  report.candidates_checked = candidates.points.size();
  // Each candidate counted itself once (it appears in the scan).
  for (size_t c = 0; c < num_candidates; ++c) {
    int64_t neighbors = total[c] - 1;
    if (neighbors <= p) {
      report.outlier_indices.push_back(candidates.rows[c]);
      report.neighbor_counts.push_back(neighbors);
    }
  }
  report.passes = 2;
  return report;
}

[[nodiscard]] Result<OutlierReport> DetectOutliersApproximate(
    const data::PointSet& points, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  data::InMemoryScan scan(&points);
  return DetectOutliersApproximate(scan, estimator, params, options);
}

[[nodiscard]] Result<int64_t> EstimateOutlierCount(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateArgs(scan, estimator, params, options));
  const int dim = scan.dim();
  const int64_t p = params.NeighborBound(scan.size());
  const BallIntegrator integrator(options.integration, dim,
                                  options.qmc_samples, params.metric);
  const double threshold = static_cast<double>(p + 1);
  int64_t count = 0;
  std::vector<double> scores;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    scores.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(integrator.IntegrateExcludingSelfBatch(
        estimator, batch.rows, batch.count, params.radius, scores.data(),
        options.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      if (scores[static_cast<size_t>(i)] <= threshold) ++count;
    }
  }
  return count;
}

[[nodiscard]] Result<int64_t> EstimateOutlierCount(
    const data::PointSet& points, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  data::InMemoryScan scan(&points);
  return EstimateOutlierCount(scan, estimator, params, options);
}

}  // namespace dbs::outlier
