#include "outlier/kde_detector.h"

#include <vector>

#include "data/kd_tree.h"

namespace dbs::outlier {
namespace {

Status ValidateArgs(const data::DataScan& scan,
                    const density::DensityEstimator& estimator,
                    const DbOutlierParams& params,
                    const KdeDetectorOptions& options) {
  if (scan.size() == 0) {
    return Status::InvalidArgument("cannot detect outliers in an empty set");
  }
  if (scan.dim() != estimator.dim()) {
    return Status::InvalidArgument(
        "estimator dimensionality does not match the scan");
  }
  if (params.radius < 0) {
    return Status::InvalidArgument("radius cannot be negative");
  }
  if (params.max_neighbor_fraction > 1) {
    return Status::InvalidArgument("neighbor fraction cannot exceed 1");
  }
  if (params.max_neighbor_fraction < 0 && params.max_neighbors < 0) {
    return Status::InvalidArgument("neighbor bound cannot be negative");
  }
  if (options.candidate_slack <= 0) {
    return Status::InvalidArgument("candidate_slack must be positive");
  }
  if (options.qmc_samples <= 0) {
    return Status::InvalidArgument("qmc_samples must be positive");
  }
  if (options.max_candidates <= 0) {
    return Status::InvalidArgument("max_candidates must be positive");
  }
  return Status::Ok();
}

}  // namespace

Result<OutlierReport> DetectOutliersApproximate(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateArgs(scan, estimator, params, options));
  const int dim = scan.dim();
  const int64_t n = scan.size();
  const int64_t p = params.NeighborBound(n);
  const double threshold =
      options.candidate_slack * static_cast<double>(p + 1);
  const BallIntegrator integrator(options.integration, dim,
                                  options.qmc_samples, params.metric);

  // Pass 1: score every point; keep the likely outliers. Scores for each
  // scan batch are computed through the batched (optionally multicore)
  // integrator; the threshold sweep stays sequential in scan order so the
  // candidate list is identical however the scores were computed.
  data::PointSet candidates(dim);
  std::vector<int64_t> candidate_indices;
  {
    std::vector<double> scores;
    scan.Reset();
    data::ScanBatch batch;
    int64_t row = 0;
    while (scan.NextBatch(&batch)) {
      scores.resize(static_cast<size_t>(batch.count));
      DBS_RETURN_IF_ERROR(integrator.IntegrateExcludingSelfBatch(
          estimator, batch.rows, batch.count, params.radius, scores.data(),
          options.executor));
      for (int64_t i = 0; i < batch.count; ++i, ++row) {
        data::PointView x = batch.point(i, dim);
        double expected = scores[static_cast<size_t>(i)];
        if (expected <= threshold) {
          if (static_cast<int64_t>(candidate_indices.size()) >=
              options.max_candidates) {
            return Status::FailedPrecondition(
                "candidate set exceeded max_candidates; lower the slack or "
                "raise p/k");
          }
          candidates.Append(x);
          candidate_indices.push_back(row);
        }
      }
    }
  }

  OutlierReport report;
  report.candidates_checked = candidates.size();
  if (candidates.empty()) {
    report.passes = 1;
    return report;
  }

  // Pass 2: exact neighbor counts for the candidates. A kd-tree over the
  // (small) candidate set turns the pass into "for each data point, bump
  // every candidate within radius".
  data::KdTree tree(&candidates);
  std::vector<int64_t> counts(static_cast<size_t>(candidates.size()), 0);
  {
    scan.Reset();
    data::ScanBatch batch;
    while (scan.NextBatch(&batch)) {
      for (int64_t i = 0; i < batch.count; ++i) {
        data::PointView x = batch.point(i, dim);
        for (int64_t c :
             tree.WithinRadiusMetric(x, params.radius, params.metric)) {
          ++counts[static_cast<size_t>(c)];
        }
      }
    }
  }

  // Each candidate counted itself once (it appears in the scan).
  for (size_t c = 0; c < counts.size(); ++c) {
    int64_t neighbors = counts[c] - 1;
    if (neighbors <= p) {
      report.outlier_indices.push_back(candidate_indices[c]);
      report.neighbor_counts.push_back(neighbors);
    }
  }
  report.passes = 2;
  return report;
}

Result<OutlierReport> DetectOutliersApproximate(
    const data::PointSet& points, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  data::InMemoryScan scan(&points);
  return DetectOutliersApproximate(scan, estimator, params, options);
}

Result<int64_t> EstimateOutlierCount(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateArgs(scan, estimator, params, options));
  const int dim = scan.dim();
  const int64_t p = params.NeighborBound(scan.size());
  const BallIntegrator integrator(options.integration, dim,
                                  options.qmc_samples, params.metric);
  const double threshold = static_cast<double>(p + 1);
  int64_t count = 0;
  std::vector<double> scores;
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    scores.resize(static_cast<size_t>(batch.count));
    DBS_RETURN_IF_ERROR(integrator.IntegrateExcludingSelfBatch(
        estimator, batch.rows, batch.count, params.radius, scores.data(),
        options.executor));
    for (int64_t i = 0; i < batch.count; ++i) {
      if (scores[static_cast<size_t>(i)] <= threshold) ++count;
    }
  }
  return count;
}

Result<int64_t> EstimateOutlierCount(
    const data::PointSet& points, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options) {
  data::InMemoryScan scan(&points);
  return EstimateOutlierCount(scan, estimator, params, options);
}

}  // namespace dbs::outlier
