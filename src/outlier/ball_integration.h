// Integration of a density estimate over an L2 ball.
//
// The KDE outlier detector scores each point O by N'(O, k) = the integral
// of the density estimate over Ball(O, k) — the expected number of
// neighbors within distance k (paper §3.2). Two integration methods:
//
//  * kCenterValue: f(O) * Volume(Ball) — exact when the density is locally
//    flat at the scale of k; one estimator evaluation per point.
//  * kQuasiMonteCarlo: averages the estimator over a fixed Halton point set
//    mapped into the ball — unbiased for any density shape at the cost of
//    `num_samples` evaluations per point. The Halton set is deterministic,
//    so scores are reproducible.

#ifndef DBS_OUTLIER_BALL_INTEGRATION_H_
#define DBS_OUTLIER_BALL_INTEGRATION_H_

#include <cstdint>
#include <vector>

#include "data/distance.h"
#include "data/point_set.h"
#include "density/density_estimator.h"

namespace dbs::outlier {

enum class BallIntegration {
  kCenterValue = 0,
  kQuasiMonteCarlo,
};

class BallIntegrator {
 public:
  // `num_samples` applies to the quasi-Monte-Carlo method only. The metric
  // selects the ball shape (L2 ball, L1 cross-polytope, Linf cube); L1
  // quasi-Monte-Carlo supports dim <= 7 (it consumes 2d+1 Halton bases).
  BallIntegrator(BallIntegration method, int dim, int num_samples = 64,
                 data::Metric metric = data::Metric::kL2);

  // Integral of `estimator` over the L2 ball of `radius` centered at `p`.
  double Integrate(const density::DensityEstimator& estimator,
                   data::PointView p, double radius) const;

  // Same, but excludes the estimator mass contributed by a data point
  // located at `p` itself (leave-one-out; see DensityEstimator::
  // EvaluateExcluding). This is the score the outlier detector uses: the
  // expected number of OTHER points in the ball.
  double IntegrateExcludingSelf(const density::DensityEstimator& estimator,
                                data::PointView p, double radius) const;

  // Batch form of IntegrateExcludingSelf over `count` row-major points:
  // out[i] is bitwise equal to the per-point call. The center-value method
  // flows through the estimator's batched leave-one-out evaluation (the
  // detector's hot path); quasi-Monte-Carlo expands every point into its
  // `num_samples` Halton probes and pushes the whole probe tile — with the
  // ball centers as the exclusion rows — through the estimator's batched
  // EvaluateExcludingSelvesBatch (executor-sharded), then reduces each
  // point's probes in the scalar path's summation order. Fails only with
  // kUnavailable under executor backpressure.
  [[nodiscard]] Status IntegrateExcludingSelfBatch(
      const density::DensityEstimator& estimator, const double* rows,
      int64_t count, double radius, double* out,
      parallel::BatchExecutor* executor = nullptr) const;

  BallIntegration method() const { return method_; }

 private:
  double Volume(double radius) const;

  BallIntegration method_;
  int dim_;
  data::Metric metric_;
  // Precomputed unit-ball offsets for QMC (num_samples x dim, row-major).
  std::vector<double> unit_offsets_;
};

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_BALL_INTEGRATION_H_
