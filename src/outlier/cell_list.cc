#include "outlier/cell_list.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "data/bounds.h"
#include "data/distance.h"
#include "outlier/detector_params.h"
#include "outlier/exact_detector.h"
#include "parallel/batch_executor.h"

namespace dbs::outlier {
namespace {

// The grid must never split a within-radius pair across non-adjacent cells,
// or the 3^d neighborhood stops being a candidate superset and the report
// diverges from the kd-tree's. The bin side is therefore inflated a hair
// past the radius: with side = radius * (1 + 2^-20), a pair the kernel can
// count (computed per-axis gap <= radius * (1 + O(eps))) maps to scaled
// coordinates less than 1 - 2^-21 apart before rounding, while the rounding
// error of floor((x - lo) * inv_side) is bounded by a few ulps of the cell
// coordinate — at most ~2^-28 given the 2^22 per-dimension cell cap below —
// leaving the margin intact. floor(u_a) - floor(u_b) <= 1 then follows from
// u_a - u_b < 1.
constexpr double kSideInflate = 1.0 + 0x1p-20;

// Per-dimension cell-count ceiling backing the error budget above; also
// bounds the flat index math far away from int64 overflow. Inputs needing
// more cells on one axis fall back to the kd-tree path regardless of
// options.max_grid_cells.
constexpr int64_t kMaxCellsPerDim = int64_t{1} << 22;

// Tile positions scanned between early-abort checks; also the vectorization
// width of the SoA kernel's per-axis inner loop.
constexpr int kBlock = 64;

// How a cell was classified by the whole-cell rules (per-cell stat slot;
// written by exactly one shard, summed sequentially afterwards).
enum class CellClass : unsigned char { kScanned = 0, kDense, kSparse };

struct Grid {
  int dim = 0;
  int64_t total_cells = 0;
  std::vector<int64_t> cells;    // per-dimension cell counts
  std::vector<int64_t> strides;  // row-major strides over `cells`
  std::vector<double> lo;        // bounding-box lower corner
  double inv_side = 0.0;
  // CSR layout: positions [start[c], start[c+1]) of `point_at_pos` hold the
  // (ascending) point indices resident in flat cell c.
  std::vector<int64_t> start;
  std::vector<int64_t> point_at_pos;
  // Axis-major SoA mirror of the points in position order: coordinate j of
  // the point at position pos lives at soa[j * n + pos], so each cell's
  // tile is contiguous per axis and the kernel's inner loop is unit-stride.
  std::vector<double> soa;
  std::vector<int64_t> occupied;  // flat ids of non-empty cells, ascending
};

// Maps a coordinate to its cell index along dimension j. The clamp is
// defensive: monotone rounding already keeps the value inside
// [0, cells_j - 1] for any point the bounding box covers.
int64_t CellCoord(double x, double lo, double inv_side, int64_t cells_j) {
  double u = std::floor((x - lo) * inv_side);
  if (!(u > 0.0)) return 0;
  int64_t c = static_cast<int64_t>(u);
  return c < cells_j ? c : cells_j - 1;
}

// Builds the grid, or returns false when the input needs more cells than
// the caps allow (tiny radius or extreme aspect ratio) and the caller
// should take the kd-tree fallback instead.
bool BuildGrid(const data::PointSet& points, double radius,
               int64_t max_grid_cells, Grid* grid) {
  const int64_t n = points.size();
  const int dim = points.dim();
  data::BoundingBox box(dim);
  for (int64_t i = 0; i < n; ++i) box.Extend(points[i]);

  const double side = radius * kSideInflate;
  grid->dim = dim;
  grid->inv_side = 1.0 / side;
  grid->lo.assign(box.lo().begin(), box.lo().end());
  grid->cells.resize(static_cast<size_t>(dim));
  const int64_t cap_per_dim = std::min(kMaxCellsPerDim, max_grid_cells);
  int64_t total = 1;
  for (int j = 0; j < dim; ++j) {
    // Compare before casting: extent / side can exceed what int64 holds.
    double t = std::floor(box.extent(j) * grid->inv_side);
    if (!(t < static_cast<double>(cap_per_dim))) return false;
    int64_t cells_j = (t > 0.0 ? static_cast<int64_t>(t) : 0) + 1;
    if (total > max_grid_cells / cells_j) return false;
    total *= cells_j;
    grid->cells[static_cast<size_t>(j)] = cells_j;
  }
  grid->total_cells = total;
  grid->strides.resize(static_cast<size_t>(dim));
  int64_t stride = 1;
  for (int j = dim - 1; j >= 0; --j) {
    grid->strides[static_cast<size_t>(j)] = stride;
    stride *= grid->cells[static_cast<size_t>(j)];
  }

  // Counting sort by flat cell id, stable in ascending point index so tile
  // scan order — and with it the prune statistics — is deterministic.
  std::vector<int64_t> cell_of(static_cast<size_t>(n));
  grid->start.assign(static_cast<size_t>(total) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    const data::PointView p = points[i];
    int64_t flat = 0;
    for (int j = 0; j < dim; ++j) {
      flat += CellCoord(p[j], grid->lo[static_cast<size_t>(j)],
                        grid->inv_side, grid->cells[static_cast<size_t>(j)]) *
              grid->strides[static_cast<size_t>(j)];
    }
    cell_of[static_cast<size_t>(i)] = flat;
    ++grid->start[static_cast<size_t>(flat) + 1];
  }
  for (int64_t c = 0; c < total; ++c) {
    if (grid->start[static_cast<size_t>(c) + 1] > 0) {
      grid->occupied.push_back(c);
    }
    grid->start[static_cast<size_t>(c) + 1] +=
        grid->start[static_cast<size_t>(c)];
  }
  grid->point_at_pos.resize(static_cast<size_t>(n));
  grid->soa.resize(static_cast<size_t>(n) * static_cast<size_t>(dim));
  std::vector<int64_t> cursor(grid->start.begin(), grid->start.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t pos = cursor[static_cast<size_t>(cell_of[static_cast<size_t>(i)])]++;
    grid->point_at_pos[static_cast<size_t>(pos)] = i;
    const data::PointView p = points[i];
    for (int j = 0; j < dim; ++j) {
      grid->soa[static_cast<size_t>(j) * static_cast<size_t>(n) +
                static_cast<size_t>(pos)] = p[j];
    }
  }
  return true;
}

// True when every pair inside the cell is within `radius` under the exact
// floating-point comparison the kernel (and the kd-tree) uses. The bound is
// the cell's REALIZED per-axis extents pushed through the same expression
// shapes as the distance code: computed |a_j - b_j| <= computed
// (max_j - min_j) by monotonicity of rounding, and the per-axis bounds
// combine through the identical ascending-axis accumulation, so
// computed distance(a, b) <= computed bound without any tolerance term.
bool CellDiameterWithinRadius(const double* ext, int dim, data::Metric metric,
                              double radius) {
  switch (metric) {
    case data::Metric::kL2: {
      double sum = 0.0;
      for (int j = 0; j < dim; ++j) sum += ext[j] * ext[j];
      return sum <= radius * radius;
    }
    case data::Metric::kL1: {
      double sum = 0.0;
      for (int j = 0; j < dim; ++j) sum += ext[j];
      return sum <= radius;
    }
    case data::Metric::kLinf: {
      double best = 0.0;
      for (int j = 0; j < dim; ++j) best = std::max(best, ext[j]);
      return best <= radius;
    }
  }
  return false;
}

// Counts tile positions within `radius` of `query`, adding the number of
// positions actually examined to *pairwise. Blockwise: the per-axis inner
// loops are branch-free and unit-stride over the SoA tile, with the early
// abort checked between blocks (`stop` = p + 2 counting the query itself;
// overshooting within a block only ever affects non-outliers, which the
// report omits). Each position's accumulation visits axes in ascending
// order with its own accumulator — floating-point identical to
// data::SquaredL2 / data::Distance on that pair.
int64_t ScanTile(const double* soa, int64_t n, int dim, int64_t tile_begin,
                 int64_t tile_end, const double* query, data::Metric metric,
                 double threshold, int64_t stop, int64_t count,
                 int64_t* pairwise) {
  double acc[kBlock];
  for (int64_t t0 = tile_begin; t0 < tile_end; t0 += kBlock) {
    const int blk = static_cast<int>(std::min<int64_t>(kBlock, tile_end - t0));
    switch (metric) {
      case data::Metric::kL2:
        for (int t = 0; t < blk; ++t) acc[t] = 0.0;
        for (int j = 0; j < dim; ++j) {
          const double qj = query[j];
          const double* col = soa + static_cast<size_t>(j) * static_cast<size_t>(n) +
                              static_cast<size_t>(t0);
          for (int t = 0; t < blk; ++t) {
            const double diff = qj - col[t];
            acc[t] += diff * diff;
          }
        }
        break;
      case data::Metric::kL1:
        for (int t = 0; t < blk; ++t) acc[t] = 0.0;
        for (int j = 0; j < dim; ++j) {
          const double qj = query[j];
          const double* col = soa + static_cast<size_t>(j) * static_cast<size_t>(n) +
                              static_cast<size_t>(t0);
          for (int t = 0; t < blk; ++t) acc[t] += std::abs(qj - col[t]);
        }
        break;
      case data::Metric::kLinf:
        for (int t = 0; t < blk; ++t) acc[t] = 0.0;
        for (int j = 0; j < dim; ++j) {
          const double qj = query[j];
          const double* col = soa + static_cast<size_t>(j) * static_cast<size_t>(n) +
                              static_cast<size_t>(t0);
          for (int t = 0; t < blk; ++t) {
            acc[t] = std::max(acc[t], std::abs(qj - col[t]));
          }
        }
        break;
    }
    int hits = 0;
    for (int t = 0; t < blk; ++t) hits += acc[t] <= threshold ? 1 : 0;
    count += hits;
    *pairwise += blk;
    if (count >= stop) return count;
  }
  return count;
}

}  // namespace

[[nodiscard]] Result<OutlierReport> DetectOutliersCellList(
    const data::PointSet& points, const DbOutlierParams& params) {
  return DetectOutliersCellList(points, params, CellListDetectorOptions{});
}

[[nodiscard]] Result<OutlierReport> DetectOutliersCellList(
    const data::PointSet& points, const DbOutlierParams& params,
    const CellListDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateExactDetectorArgs(points, params));
  if (options.max_grid_dim < 1) {
    return Status::InvalidArgument("max_grid_dim must be at least 1");
  }
  if (options.max_grid_cells < 1) {
    return Status::InvalidArgument("max_grid_cells must be at least 1");
  }
  if (options.stats != nullptr) *options.stats = CellListStats{};

  const int64_t n = points.size();
  const int dim = points.dim();
  const int64_t p = params.NeighborBound(n);

  Grid grid;
  // A zero radius means a zero bin side; above max_grid_dim the 3^d
  // neighborhood stops paying for itself. BuildGrid additionally rejects
  // inputs whose bounding box needs more bins than the caps allow. All
  // three cases delegate to the kd-tree detector, which shares the
  // identical-report contract by construction.
  const bool grid_ok = params.radius > 0 && dim <= options.max_grid_dim &&
                       BuildGrid(points, params.radius, options.max_grid_cells,
                                 &grid);
  if (!grid_ok) {
    if (options.stats != nullptr) options.stats->used_fallback = true;
    ExactDetectorOptions fallback;
    fallback.executor = options.executor;
    return DetectOutliersExact(points, params, fallback);
  }

  const int64_t num_occupied = static_cast<int64_t>(grid.occupied.size());
  // Neighbors-excluding-self per point; disjoint slots (each point lives in
  // exactly one cell), so the per-cell pass shards freely.
  std::vector<int64_t> neighbor_counts(static_cast<size_t>(n));
  // Per-occupied-cell stat slots, likewise disjoint; summed sequentially
  // after the parallel pass so totals are worker-count invariant.
  std::vector<CellClass> cell_class(static_cast<size_t>(num_occupied),
                                    CellClass::kScanned);
  std::vector<int64_t> cell_pairwise(static_cast<size_t>(num_occupied), 0);

  const double threshold = params.metric == data::Metric::kL2
                               ? params.radius * params.radius
                               : params.radius;
  const int64_t stop = p + 2;  // p + 1 neighbors certain, counting self

  auto process_cells = [&](int64_t begin, int64_t end) {
    std::vector<int64_t> coord(static_cast<size_t>(dim));
    std::vector<int64_t> offset(static_cast<size_t>(dim));
    std::vector<double> ext(static_cast<size_t>(dim));
    // Neighbor tiles of the cell under scan, own cell first then offsets in
    // lexicographic order — a fixed order, so the abort point and the
    // pairwise counter do not depend on sharding.
    std::vector<int64_t> tiles;
    for (int64_t oc = begin; oc < end; ++oc) {
      const int64_t flat = grid.occupied[static_cast<size_t>(oc)];
      const int64_t tile_s = grid.start[static_cast<size_t>(flat)];
      const int64_t tile_e = grid.start[static_cast<size_t>(flat) + 1];
      const int64_t m = tile_e - tile_s;
      int64_t rem = flat;
      for (int j = 0; j < dim; ++j) {
        coord[static_cast<size_t>(j)] = rem / grid.strides[static_cast<size_t>(j)];
        rem %= grid.strides[static_cast<size_t>(j)];
      }

      // Dense rule: enough residents that each already has p + 1 same-cell
      // neighbors, provided the cell's realized diameter fits the radius.
      if (m >= p + 2) {
        for (int j = 0; j < dim; ++j) {
          const double* col = grid.soa.data() +
                              static_cast<size_t>(j) * static_cast<size_t>(n);
          double mn = col[tile_s];
          double mx = col[tile_s];
          for (int64_t t = tile_s + 1; t < tile_e; ++t) {
            mn = std::min(mn, col[t]);
            mx = std::max(mx, col[t]);
          }
          ext[static_cast<size_t>(j)] = mx - mn;
        }
        if (CellDiameterWithinRadius(ext.data(), dim, params.metric,
                                     params.radius)) {
          cell_class[static_cast<size_t>(oc)] = CellClass::kDense;
          for (int64_t t = tile_s; t < tile_e; ++t) {
            neighbor_counts[static_cast<size_t>(
                grid.point_at_pos[static_cast<size_t>(t)])] = p + 1;
          }
          continue;
        }
      }

      // Gather the (at most 3^d) neighbor tiles once per cell.
      tiles.clear();
      tiles.push_back(flat);
      int64_t neighborhood_total = m;
      for (int j = 0; j < dim; ++j) offset[static_cast<size_t>(j)] = -1;
      for (;;) {
        bool zero = true;
        bool valid = true;
        int64_t nflat = flat;
        for (int j = 0; j < dim; ++j) {
          const int64_t o = offset[static_cast<size_t>(j)];
          if (o != 0) zero = false;
          const int64_t c = coord[static_cast<size_t>(j)] + o;
          if (c < 0 || c >= grid.cells[static_cast<size_t>(j)]) {
            valid = false;
            break;
          }
          nflat += o * grid.strides[static_cast<size_t>(j)];
        }
        if (valid && !zero) {
          const int64_t cnt = grid.start[static_cast<size_t>(nflat) + 1] -
                              grid.start[static_cast<size_t>(nflat)];
          if (cnt > 0) {
            tiles.push_back(nflat);
            neighborhood_total += cnt;
          }
        }
        int j = dim - 1;
        while (j >= 0 && offset[static_cast<size_t>(j)] == 1) {
          offset[static_cast<size_t>(j)] = -1;
          --j;
        }
        if (j < 0) break;
        ++offset[static_cast<size_t>(j)];
      }

      // Sparse rule: too few points in the whole neighborhood for any
      // resident to clear p neighbors — all residents are outliers. Their
      // exact counts (the report carries them) still come from the kernel
      // below, where the abort can never fire.
      if (neighborhood_total - 1 <= p) {
        cell_class[static_cast<size_t>(oc)] = CellClass::kSparse;
      }

      int64_t* pairwise = &cell_pairwise[static_cast<size_t>(oc)];
      for (int64_t t = tile_s; t < tile_e; ++t) {
        const int64_t q = grid.point_at_pos[static_cast<size_t>(t)];
        const double* query = points[q].data();
        int64_t count = 0;
        for (const int64_t tf : tiles) {
          count = ScanTile(grid.soa.data(), n, dim,
                           grid.start[static_cast<size_t>(tf)],
                           grid.start[static_cast<size_t>(tf) + 1], query,
                           params.metric, threshold, stop, count, pairwise);
          if (count >= stop) break;
        }
        neighbor_counts[static_cast<size_t>(q)] = count - 1;  // exclude self
      }
    }
  };

  if (options.executor != nullptr) {
    DBS_RETURN_IF_ERROR(options.executor->ParallelFor(num_occupied,
                                                      process_cells));
  } else {
    process_cells(0, num_occupied);
  }

  if (options.stats != nullptr) {
    CellListStats& stats = *options.stats;
    stats.grid_cells = grid.total_cells;
    stats.occupied_cells = num_occupied;
    for (int64_t oc = 0; oc < num_occupied; ++oc) {
      if (cell_class[static_cast<size_t>(oc)] == CellClass::kDense) {
        ++stats.cells_dense_pruned;
      } else if (cell_class[static_cast<size_t>(oc)] == CellClass::kSparse) {
        ++stats.cells_sparse_pruned;
      }
      stats.pairwise_evaluated += cell_pairwise[static_cast<size_t>(oc)];
    }
  }

  OutlierReport report;
  report.passes = 1;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t neighbors = neighbor_counts[static_cast<size_t>(i)];
    if (neighbors <= p) {
      report.outlier_indices.push_back(i);
      report.neighbor_counts.push_back(neighbors);
    }
  }
  report.candidates_checked = n;
  return report;
}

}  // namespace dbs::outlier
