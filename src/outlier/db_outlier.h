// Distance-based outlier definitions (Knorr & Ng, VLDB 1998; paper §3.2).
//
// An object O in dataset D is a DB(p, k)-outlier if at most p objects of D
// lie within distance k of O. Note the paper's variable naming: k is the
// DISTANCE and p is the neighbor COUNT bound. p may alternatively be given
// as a fraction of |D|.

#ifndef DBS_OUTLIER_DB_OUTLIER_H_
#define DBS_OUTLIER_DB_OUTLIER_H_

#include <cstdint>
#include <vector>

#include "data/distance.h"

namespace dbs::outlier {

struct DbOutlierParams {
  // Neighborhood radius (the paper's k).
  double radius = 0.1;
  // Distance metric defining the neighborhood; §3.2 notes L1/Linf work
  // equally well.
  data::Metric metric = data::Metric::kL2;
  // Maximum number of neighbors an outlier may have, EXCLUDING the point
  // itself (the paper's p). Exactly one of max_neighbors / max_neighbor_
  // fraction applies: the fraction is used when >= 0.
  int64_t max_neighbors = 10;
  double max_neighbor_fraction = -1.0;

  // Resolves the neighbor bound against a dataset of size n.
  int64_t NeighborBound(int64_t n) const {
    if (max_neighbor_fraction >= 0) {
      return static_cast<int64_t>(max_neighbor_fraction *
                                  static_cast<double>(n));
    }
    return max_neighbors;
  }
};

struct OutlierReport {
  // Indices of the detected outliers (into the scanned dataset order).
  std::vector<int64_t> outlier_indices;
  // Exact neighbor count per detected outlier (parallel array).
  std::vector<int64_t> neighbor_counts;
  // Number of candidate points the (approximate) detector verified; equals
  // outlier_indices.size() for exact detectors.
  int64_t candidates_checked = 0;
  // Dataset passes consumed, excluding any density-estimator fitting pass.
  int passes = 0;
};

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_DB_OUTLIER_H_
