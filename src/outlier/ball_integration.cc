#include "outlier/ball_integration.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace dbs::outlier {
namespace {

// Fills out[0..d) with the `index`-th point of a low-discrepancy sequence
// uniform over the L2 unit ball (rejection from the cube; deterministic).
bool TryL2Point(uint64_t index, int dim, double* out) {
  double norm2 = 0.0;
  for (int j = 0; j < dim; ++j) {
    out[j] = 2.0 * HaltonValue(index, SmallPrime(j % 16)) - 1.0;
    norm2 += out[j] * out[j];
  }
  return norm2 <= 1.0;
}

// Deterministic uniform point in the L1 unit ball via the exponential
// simplex map: t_i = g_i / (g_1 + ... + g_{d+1}) with g = -log(u) puts
// (t_1..t_d) uniform over the standard simplex; random signs extend it to
// the cross-polytope. Consumes 2d+1 Halton bases.
void L1Point(uint64_t index, int dim, double* out) {
  DBS_CHECK(dim <= 7);
  double g_sum = 0.0;
  double g[8];
  for (int j = 0; j < dim; ++j) {
    double u = HaltonValue(index, SmallPrime(j));
    g[j] = -std::log(u);
    g_sum += g[j];
  }
  g_sum += -std::log(HaltonValue(index, SmallPrime(dim)));
  for (int j = 0; j < dim; ++j) {
    double sign =
        HaltonValue(index, SmallPrime(dim + 1 + j)) < 0.5 ? -1.0 : 1.0;
    out[j] = sign * g[j] / g_sum;
  }
}

void LinfPoint(uint64_t index, int dim, double* out) {
  for (int j = 0; j < dim; ++j) {
    out[j] = 2.0 * HaltonValue(index, SmallPrime(j % 16)) - 1.0;
  }
}

}  // namespace

BallIntegrator::BallIntegrator(BallIntegration method, int dim,
                               int num_samples, data::Metric metric)
    : method_(method), dim_(dim), metric_(metric) {
  DBS_CHECK(dim > 0);
  if (method_ != BallIntegration::kQuasiMonteCarlo) return;
  DBS_CHECK(num_samples > 0);
  unit_offsets_.reserve(static_cast<size_t>(num_samples) * dim);
  uint64_t index = 0;
  int kept = 0;
  std::vector<double> candidate(dim);
  while (kept < num_samples) {
    bool accept = true;
    switch (metric_) {
      case data::Metric::kL2:
        accept = TryL2Point(index, dim_, candidate.data());
        break;
      case data::Metric::kL1:
        L1Point(index, dim_, candidate.data());
        break;
      case data::Metric::kLinf:
        LinfPoint(index, dim_, candidate.data());
        break;
    }
    ++index;
    if (!accept) {
      // Safety: in high dimensions the L2 ball occupies a vanishing
      // fraction of the cube; bail out to whatever was kept after a
      // generous budget.
      if (index > static_cast<uint64_t>(num_samples) * 10000ULL &&
          kept > 0) {
        break;
      }
      continue;
    }
    unit_offsets_.insert(unit_offsets_.end(), candidate.begin(),
                         candidate.end());
    ++kept;
  }
}

double BallIntegrator::Volume(double radius) const {
  switch (metric_) {
    case data::Metric::kL2:
      return BallVolume(dim_, radius);
    case data::Metric::kL1:
      return CrossPolytopeVolume(dim_, radius);
    case data::Metric::kLinf:
      return CubeVolume(dim_, radius);
  }
  return 0.0;
}

double BallIntegrator::Integrate(const density::DensityEstimator& estimator,
                                 data::PointView p, double radius) const {
  DBS_CHECK(p.dim() == dim_);
  DBS_CHECK(radius >= 0);
  double volume = Volume(radius);
  if (method_ == BallIntegration::kCenterValue) {
    return estimator.Evaluate(p) * volume;
  }
  const int64_t m = static_cast<int64_t>(unit_offsets_.size()) / dim_;
  DBS_CHECK(m > 0);
  double sum = 0.0;
  std::vector<double> probe(dim_);
  for (int64_t s = 0; s < m; ++s) {
    const double* off = unit_offsets_.data() + s * dim_;
    for (int j = 0; j < dim_; ++j) probe[j] = p[j] + radius * off[j];
    sum += estimator.Evaluate(data::PointView(probe.data(), dim_));
  }
  return sum / static_cast<double>(m) * volume;
}

double BallIntegrator::IntegrateExcludingSelf(
    const density::DensityEstimator& estimator, data::PointView p,
    double radius) const {
  DBS_CHECK(p.dim() == dim_);
  DBS_CHECK(radius >= 0);
  double volume = Volume(radius);
  if (method_ == BallIntegration::kCenterValue) {
    return estimator.EvaluateExcluding(p, p) * volume;
  }
  const int64_t m = static_cast<int64_t>(unit_offsets_.size()) / dim_;
  DBS_CHECK(m > 0);
  double sum = 0.0;
  std::vector<double> probe(dim_);
  for (int64_t s = 0; s < m; ++s) {
    const double* off = unit_offsets_.data() + s * dim_;
    for (int j = 0; j < dim_; ++j) probe[j] = p[j] + radius * off[j];
    sum += estimator.EvaluateExcluding(data::PointView(probe.data(), dim_),
                                       p);
  }
  return sum / static_cast<double>(m) * volume;
}

Status BallIntegrator::IntegrateExcludingSelfBatch(
    const density::DensityEstimator& estimator, const double* rows,
    int64_t count, double radius, double* out,
    parallel::BatchExecutor* executor) const {
  DBS_CHECK(radius >= 0);
  if (count <= 0) return Status::Ok();
  if (method_ == BallIntegration::kCenterValue) {
    DBS_RETURN_IF_ERROR(
        estimator.EvaluateExcludingBatch(rows, count, out, executor));
    // Same per-point arithmetic as the scalar call: f * volume.
    const double volume = Volume(radius);
    for (int64_t i = 0; i < count; ++i) out[i] *= volume;
    return Status::Ok();
  }
  auto shard = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out[i] = IntegrateExcludingSelf(
          estimator, data::PointView(rows + i * dim_, dim_), radius);
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

}  // namespace dbs::outlier
