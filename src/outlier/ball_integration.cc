#include "outlier/ball_integration.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace dbs::outlier {
namespace {

// Fills out[0..d) with the `index`-th point of a low-discrepancy sequence
// uniform over the L2 unit ball (rejection from the cube; deterministic).
bool TryL2Point(uint64_t index, int dim, double* out) {
  double norm2 = 0.0;
  for (int j = 0; j < dim; ++j) {
    out[j] = 2.0 * HaltonValue(index, SmallPrime(j % 16)) - 1.0;
    norm2 += out[j] * out[j];
  }
  return norm2 <= 1.0;
}

// Deterministic uniform point in the L1 unit ball via the exponential
// simplex map: t_i = g_i / (g_1 + ... + g_{d+1}) with g = -log(u) puts
// (t_1..t_d) uniform over the standard simplex; random signs extend it to
// the cross-polytope. Consumes 2d+1 Halton bases.
void L1Point(uint64_t index, int dim, double* out) {
  DBS_CHECK(dim <= 7);
  double g_sum = 0.0;
  double g[8];
  for (int j = 0; j < dim; ++j) {
    double u = HaltonValue(index, SmallPrime(j));
    g[j] = -std::log(u);
    g_sum += g[j];
  }
  g_sum += -std::log(HaltonValue(index, SmallPrime(dim)));
  for (int j = 0; j < dim; ++j) {
    double sign =
        HaltonValue(index, SmallPrime(dim + 1 + j)) < 0.5 ? -1.0 : 1.0;
    out[j] = sign * g[j] / g_sum;
  }
}

void LinfPoint(uint64_t index, int dim, double* out) {
  for (int j = 0; j < dim; ++j) {
    out[j] = 2.0 * HaltonValue(index, SmallPrime(j % 16)) - 1.0;
  }
}

}  // namespace

BallIntegrator::BallIntegrator(BallIntegration method, int dim,
                               int num_samples, data::Metric metric)
    : method_(method), dim_(dim), metric_(metric) {
  DBS_CHECK(dim > 0);
  if (method_ != BallIntegration::kQuasiMonteCarlo) return;
  DBS_CHECK(num_samples > 0);
  unit_offsets_.reserve(static_cast<size_t>(num_samples) * dim);
  uint64_t index = 0;
  int kept = 0;
  std::vector<double> candidate(dim);
  while (kept < num_samples) {
    bool accept = true;
    switch (metric_) {
      case data::Metric::kL2:
        accept = TryL2Point(index, dim_, candidate.data());
        break;
      case data::Metric::kL1:
        L1Point(index, dim_, candidate.data());
        break;
      case data::Metric::kLinf:
        LinfPoint(index, dim_, candidate.data());
        break;
    }
    ++index;
    if (!accept) {
      // Safety: in high dimensions the L2 ball occupies a vanishing
      // fraction of the cube; bail out to whatever was kept after a
      // generous budget.
      if (index > static_cast<uint64_t>(num_samples) * 10000ULL &&
          kept > 0) {
        break;
      }
      continue;
    }
    unit_offsets_.insert(unit_offsets_.end(), candidate.begin(),
                         candidate.end());
    ++kept;
  }
}

double BallIntegrator::Volume(double radius) const {
  switch (metric_) {
    case data::Metric::kL2:
      return BallVolume(dim_, radius);
    case data::Metric::kL1:
      return CrossPolytopeVolume(dim_, radius);
    case data::Metric::kLinf:
      return CubeVolume(dim_, radius);
  }
  return 0.0;
}

double BallIntegrator::Integrate(const density::DensityEstimator& estimator,
                                 data::PointView p, double radius) const {
  DBS_CHECK(p.dim() == dim_);
  DBS_CHECK(radius >= 0);
  double volume = Volume(radius);
  if (method_ == BallIntegration::kCenterValue) {
    return estimator.Evaluate(p) * volume;
  }
  const int64_t m = static_cast<int64_t>(unit_offsets_.size()) / dim_;
  DBS_CHECK(m > 0);
  double sum = 0.0;
  std::vector<double> probe(dim_);
  for (int64_t s = 0; s < m; ++s) {
    const double* off = unit_offsets_.data() + s * dim_;
    for (int j = 0; j < dim_; ++j) probe[j] = p[j] + radius * off[j];
    sum += estimator.Evaluate(data::PointView(probe.data(), dim_));
  }
  return sum / static_cast<double>(m) * volume;
}

double BallIntegrator::IntegrateExcludingSelf(
    const density::DensityEstimator& estimator, data::PointView p,
    double radius) const {
  DBS_CHECK(p.dim() == dim_);
  DBS_CHECK(radius >= 0);
  double volume = Volume(radius);
  if (method_ == BallIntegration::kCenterValue) {
    return estimator.EvaluateExcluding(p, p) * volume;
  }
  const int64_t m = static_cast<int64_t>(unit_offsets_.size()) / dim_;
  DBS_CHECK(m > 0);
  double sum = 0.0;
  std::vector<double> probe(dim_);
  for (int64_t s = 0; s < m; ++s) {
    const double* off = unit_offsets_.data() + s * dim_;
    for (int j = 0; j < dim_; ++j) probe[j] = p[j] + radius * off[j];
    sum += estimator.EvaluateExcluding(data::PointView(probe.data(), dim_),
                                       p);
  }
  return sum / static_cast<double>(m) * volume;
}

Status BallIntegrator::IntegrateExcludingSelfBatch(
    const density::DensityEstimator& estimator, const double* rows,
    int64_t count, double radius, double* out,
    parallel::BatchExecutor* executor) const {
  DBS_CHECK(radius >= 0);
  if (count <= 0) return Status::Ok();
  if (method_ == BallIntegration::kCenterValue) {
    DBS_RETURN_IF_ERROR(
        estimator.EvaluateExcludingBatch(rows, count, out, executor));
    // Same per-point arithmetic as the scalar call: f * volume.
    const double volume = Volume(radius);
    for (int64_t i = 0; i < count; ++i) out[i] *= volume;
    return Status::Ok();
  }
  // Quasi-Monte-Carlo: each point fans out into its m Halton probes — a
  // natural tile. Expanding the probes up front and evaluating them through
  // the estimator's batched leave-one-out-against-center path moves the
  // sharding (and any tuned backend batching, e.g. the Kde cell-sorted
  // gather) from per-point to per-probe granularity. Bitwise equality with
  // the scalar loop holds because the probe arithmetic
  // (p[j] + radius * off[j]) and the per-point reduction order (probe 0..m-1
  // into one accumulator, then / m * volume) are unchanged — only WHERE the
  // probe evaluations run moves.
  const int64_t m = static_cast<int64_t>(unit_offsets_.size()) / dim_;
  DBS_CHECK(m > 0);
  const double volume = Volume(radius);
  // Cap the expanded tile so the probe/exclusion buffers stay a bounded
  // scratch (~a few MB), not O(count * m).
  constexpr int64_t kMaxProbeRows = 32768;
  const int64_t points_per_tile = std::max<int64_t>(kMaxProbeRows / m, 1);
  std::vector<double> probes;
  std::vector<double> selves;
  std::vector<double> values;
  for (int64_t c0 = 0; c0 < count; c0 += points_per_tile) {
    const int64_t c1 = std::min(count, c0 + points_per_tile);
    const int64_t tile_points = c1 - c0;
    const int64_t tile_rows = tile_points * m;
    probes.resize(static_cast<size_t>(tile_rows) * dim_);
    selves.resize(static_cast<size_t>(tile_rows) * dim_);
    values.resize(static_cast<size_t>(tile_rows));
    for (int64_t i = 0; i < tile_points; ++i) {
      const double* p = rows + (c0 + i) * dim_;
      for (int64_t s = 0; s < m; ++s) {
        const double* off = unit_offsets_.data() + s * dim_;
        double* probe = probes.data() + (i * m + s) * dim_;
        double* self = selves.data() + (i * m + s) * dim_;
        for (int j = 0; j < dim_; ++j) {
          probe[j] = p[j] + radius * off[j];
          self[j] = p[j];
        }
      }
    }
    DBS_RETURN_IF_ERROR(estimator.EvaluateExcludingSelvesBatch(
        probes.data(), selves.data(), tile_rows, values.data(), executor));
    for (int64_t i = 0; i < tile_points; ++i) {
      double sum = 0.0;
      const double* v = values.data() + i * m;
      for (int64_t s = 0; s < m; ++s) sum += v[s];
      out[c0 + i] = sum / static_cast<double>(m) * volume;
    }
  }
  return Status::Ok();
}

}  // namespace dbs::outlier
