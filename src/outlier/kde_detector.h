// Approximate DB(p,k)-outlier detection via a density estimate (paper §3.2).
//
// The detector scores each point O with N'(O, k) = integral of the density
// estimator over Ball(O, k) — the expected number of neighbors within
// distance k. Points whose expected neighbor count is small are LIKELY
// outliers; they are kept as candidates and verified with exact neighbor
// counts in one more pass. Including the estimator-fitting pass, the whole
// procedure reads the dataset at most three times (§4.5 reports "all the
// outliers with at most two dataset passes plus the pass that computes the
// density estimator"), regardless of dataset size — versus the quadratic
// exact nested loop.
//
// The candidate threshold is slack * (p + 1): `slack` > 1 absorbs estimator
// error so true outliers are not pruned before verification (recall), at
// the cost of more candidates to verify (work). bench/outlier_detection
// sweeps this tradeoff.
//
// The same scoring supports a zero-verification estimate of HOW MANY
// DB(p,k)-outliers a dataset has — the cheap exploration mode the paper
// highlights for picking p and k.

#ifndef DBS_OUTLIER_KDE_DETECTOR_H_
#define DBS_OUTLIER_KDE_DETECTOR_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/point_set.h"
#include "density/density_estimator.h"
#include "outlier/ball_integration.h"
#include "outlier/db_outlier.h"
#include "util/status.h"

namespace dbs::outlier {

struct KdeDetectorOptions {
  BallIntegration integration = BallIntegration::kCenterValue;
  // Probes per ball for the quasi-Monte-Carlo method.
  int qmc_samples = 64;
  // Candidate threshold multiplier (see header comment).
  double candidate_slack = 2.0;
  // Hard cap on retained candidates; exceeding it aborts with
  // FailedPrecondition (raise the slack down or p up instead of thrashing).
  int64_t max_candidates = 1000000;
  // Optional worker pool (not owned) for the scoring pass. Scores are
  // independent per point, so sharding them is bitwise invisible: the
  // report is identical with 0, 1 or N workers. kUnavailable under
  // executor backpressure.
  parallel::BatchExecutor* executor = nullptr;
};

// Full detection: scoring pass + verification pass over `scan`.
// `estimator` must be fitted on the same data.
Result<OutlierReport> DetectOutliersApproximate(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options);

Result<OutlierReport> DetectOutliersApproximate(
    const data::PointSet& points,
    const density::DensityEstimator& estimator, const DbOutlierParams& params,
    const KdeDetectorOptions& options);

// One scoring pass only: the number of points whose EXPECTED neighbor
// count is within the (un-slacked) bound — a fast estimate of the outlier
// count for parameter exploration.
Result<int64_t> EstimateOutlierCount(data::DataScan& scan,
                                     const density::DensityEstimator& estimator,
                                     const DbOutlierParams& params,
                                     const KdeDetectorOptions& options);

Result<int64_t> EstimateOutlierCount(const data::PointSet& points,
                                     const density::DensityEstimator& estimator,
                                     const DbOutlierParams& params,
                                     const KdeDetectorOptions& options);

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_KDE_DETECTOR_H_
