// Approximate DB(p,k)-outlier detection via a density estimate (paper §3.2).
//
// The detector scores each point O with N'(O, k) = integral of the density
// estimator over Ball(O, k) — the expected number of neighbors within
// distance k. Points whose expected neighbor count is small are LIKELY
// outliers; they are kept as candidates and verified with exact neighbor
// counts in one more pass. Including the estimator-fitting pass, the whole
// procedure reads the dataset at most three times (§4.5 reports "all the
// outliers with at most two dataset passes plus the pass that computes the
// density estimator"), regardless of dataset size — versus the quadratic
// exact nested loop.
//
// The candidate threshold is slack * (p + 1): `slack` > 1 absorbs estimator
// error so true outliers are not pruned before verification (recall), at
// the cost of more candidates to verify (work). bench/outlier_detection
// sweeps this tradeoff.
//
// The same scoring supports a zero-verification estimate of HOW MANY
// DB(p,k)-outliers a dataset has — the cheap exploration mode the paper
// highlights for picking p and k.

#ifndef DBS_OUTLIER_KDE_DETECTOR_H_
#define DBS_OUTLIER_KDE_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/point_set.h"
#include "density/density_estimator.h"
#include "outlier/ball_integration.h"
#include "outlier/db_outlier.h"
#include "util/shard.h"
#include "util/status.h"

namespace dbs::outlier {

struct KdeDetectorOptions {
  BallIntegration integration = BallIntegration::kCenterValue;
  // Probes per ball for the quasi-Monte-Carlo method.
  int qmc_samples = 64;
  // Candidate threshold multiplier (see header comment).
  double candidate_slack = 2.0;
  // Hard cap on retained candidates; exceeding it aborts with
  // FailedPrecondition (raise the slack down or p up instead of thrashing).
  int64_t max_candidates = 1000000;
  // Optional worker pool (not owned) for the scoring pass. Scores are
  // independent per point, so sharding them is bitwise invisible: the
  // report is identical with 0, 1 or N workers. kUnavailable under
  // executor backpressure.
  parallel::BatchExecutor* executor = nullptr;
};

// Full detection: scoring pass + verification pass over `scan`.
// `estimator` must be fitted on the same data.
[[nodiscard]] Result<OutlierReport> DetectOutliersApproximate(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options);

[[nodiscard]] Result<OutlierReport> DetectOutliersApproximate(
    const data::PointSet& points,
    const density::DensityEstimator& estimator, const DbOutlierParams& params,
    const KdeDetectorOptions& options);

// One scoring pass only: the number of points whose EXPECTED neighbor
// count is within the (un-slacked) bound — a fast estimate of the outlier
// count for parameter exploration.
[[nodiscard]] Result<int64_t> EstimateOutlierCount(data::DataScan& scan,
                                     const density::DensityEstimator& estimator,
                                     const DbOutlierParams& params,
                                     const KdeDetectorOptions& options);

[[nodiscard]] Result<int64_t> EstimateOutlierCount(const data::PointSet& points,
                                     const density::DensityEstimator& estimator,
                                     const DbOutlierParams& params,
                                     const KdeDetectorOptions& options);

// ---------------------------------------------------------------------------
// Sharded partial pipeline (DESIGN.md §12).
//
// Detection is two fan-out rounds: every shard scores its slice of rows
// against the shared estimator (candidate rows are GLOBAL row indices), the
// merged candidate set is broadcast back, and every shard counts exact
// neighbors of all candidates among its own rows. Both stages are RNG-free
// and contiguous-range, so the sharded detector is bitwise identical to
// DetectOutliersApproximate at ANY shard count — DetectOutliersApproximate
// itself runs as the num_shards == 1 instance of these functions.

// One shard's candidate slice from the scoring pass, in global row order.
struct CandidateShardPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
  int64_t rows = 0;
  data::PointSet candidates;
  std::vector<int64_t> candidate_rows;  // global row indices
};

struct PartialOutlierCandidates {
  std::vector<CandidateShardPart> parts;
};

// The flattened candidate set of a COMPLETE scoring round.
struct OutlierCandidates {
  data::PointSet points;
  std::vector<int64_t> rows;  // global row indices, ascending
};

// One shard's exact neighbor tallies: counts[c] = occurrences of candidate
// c within params.radius among this shard's rows.
struct NeighborCountShardPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
  std::vector<int64_t> counts;
};

struct PartialNeighborCounts {
  std::vector<NeighborCountShardPart> parts;
};

// Scoring pass over one shard's slice. `scan` must cover exactly the rows
// of ShardRowRange(info.total_rows, info.num_shards, info.shard). The
// expected-neighbor bound p is computed from info.total_rows. A shard whose
// own candidate count exceeds options.max_candidates fails like the
// unsharded detector does.
[[nodiscard]] Result<PartialOutlierCandidates> ScoreOutlierCandidatesPartial(
    data::DataScan& scan, const density::DensityEstimator& estimator,
    const DbOutlierParams& params, const KdeDetectorOptions& options,
    const ShardInfo& info);

// Disjoint union; fails with FailedPrecondition when the combined candidate
// count exceeds `max_candidates` (the global cap the sequential sweep
// enforces).
[[nodiscard]] Result<PartialOutlierCandidates> MergeOutlierCandidates(
    PartialOutlierCandidates a, PartialOutlierCandidates b,
    int64_t max_candidates);

// Flattens a COMPLETE candidate state (all shards present) in ascending
// shard order — i.e. ascending global row order.
[[nodiscard]] Result<OutlierCandidates> FinalizeOutlierCandidates(
    PartialOutlierCandidates partial);

// Verification pass over one shard's slice: exact neighbor tallies of every
// candidate among the shard's rows (kd-tree over the candidate set).
[[nodiscard]] Result<PartialNeighborCounts> CountCandidateNeighborsPartial(
    data::DataScan& scan, const OutlierCandidates& candidates,
    const DbOutlierParams& params, const ShardInfo& info);

[[nodiscard]] Result<PartialNeighborCounts> MergeNeighborCounts(PartialNeighborCounts a,
                                                  PartialNeighborCounts b);

// Assembles the final report from COMPLETE candidate and count states:
// per-candidate tallies are summed in ascending shard order (integer sums —
// exact), each candidate's self-count removed, and survivors reported.
// Sets candidates_checked and passes = 2.
[[nodiscard]] Result<OutlierReport> FinalizeOutlierReport(
    const OutlierCandidates& candidates, const PartialNeighborCounts& counts,
    const DbOutlierParams& params);

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_KDE_DETECTOR_H_
