// Shared (points, params) validation for the exact DB(p,k) detectors.
//
// All three exact entry points — kd-tree (DetectOutliersExact), cell list
// (DetectOutliersCellList) and nested loop (DetectOutliersNestedLoop) —
// accept the same inputs and must reject the same degenerate ones with the
// same messages, so the checks live here rather than being re-stated (and
// drifting) per detector.

#ifndef DBS_OUTLIER_DETECTOR_PARAMS_H_
#define DBS_OUTLIER_DETECTOR_PARAMS_H_

#include "data/point_set.h"
#include "outlier/db_outlier.h"
#include "util/status.h"

namespace dbs::outlier {

// Rejects empty inputs, negative radii and out-of-range neighbor bounds.
[[nodiscard]] inline Status ValidateExactDetectorArgs(
    const data::PointSet& points, const DbOutlierParams& params) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot detect outliers in an empty set");
  }
  if (params.radius < 0) {
    return Status::InvalidArgument("radius cannot be negative");
  }
  if (params.max_neighbor_fraction < 0 && params.max_neighbors < 0) {
    return Status::InvalidArgument("neighbor bound cannot be negative");
  }
  if (params.max_neighbor_fraction > 1) {
    return Status::InvalidArgument("neighbor fraction cannot exceed 1");
  }
  return Status::Ok();
}

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_DETECTOR_PARAMS_H_
