#include "outlier/exact_detector.h"

#include <vector>

#include "data/distance.h"
#include "data/kd_tree.h"
#include "outlier/detector_params.h"
#include "parallel/batch_executor.h"

namespace dbs::outlier {

[[nodiscard]] Result<OutlierReport> DetectOutliersExact(const data::PointSet& points,
                                          const DbOutlierParams& params) {
  return DetectOutliersExact(points, params, ExactDetectorOptions{});
}

[[nodiscard]] Result<OutlierReport> DetectOutliersExact(
    const data::PointSet& points, const DbOutlierParams& params,
    const ExactDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateExactDetectorArgs(points, params));
  const int64_t n = points.size();
  const int64_t p = params.NeighborBound(n);

  data::KdTree tree(&points);
  // Per-point neighbor counts land in disjoint slots, so the counting pass
  // shards freely; the report is assembled afterwards in index order,
  // making the output identical at any worker count.
  std::vector<int64_t> neighbor_counts(static_cast<size_t>(n));
  auto count_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // Count includes the point itself; abort once p+1 OTHER neighbors
      // are certain (i.e. p+2 counting self).
      int64_t count = tree.CountWithinRadiusMetric(points[i], params.radius,
                                                   params.metric,
                                                   /*cap=*/p + 1);
      neighbor_counts[static_cast<size_t>(i)] = count - 1;  // exclude self
    }
  };
  if (options.executor != nullptr) {
    DBS_RETURN_IF_ERROR(options.executor->ParallelFor(n, count_range));
  } else {
    count_range(0, n);
  }

  OutlierReport report;
  report.passes = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t neighbors = neighbor_counts[static_cast<size_t>(i)];
    if (neighbors <= p) {
      report.outlier_indices.push_back(i);
      report.neighbor_counts.push_back(neighbors);
    }
  }
  report.candidates_checked = n;
  return report;
}

[[nodiscard]] Result<OutlierReport> DetectOutliersNestedLoop(const data::PointSet& points,
                                               const DbOutlierParams& params) {
  return DetectOutliersNestedLoop(points, params, ExactDetectorOptions{});
}

[[nodiscard]] Result<OutlierReport> DetectOutliersNestedLoop(
    const data::PointSet& points, const DbOutlierParams& params,
    const ExactDetectorOptions& options) {
  DBS_RETURN_IF_ERROR(ValidateExactDetectorArgs(points, params));
  const int64_t n = points.size();
  const int64_t p = params.NeighborBound(n);

  // Same disjoint-slot pattern as the kd-tree path: each outer-loop index
  // owns one count slot, the early abort leaves p+1 in it (> p, so the
  // ascending assembly below skips the point), and the report comes out
  // byte-identical at any worker count.
  std::vector<int64_t> neighbor_counts(static_cast<size_t>(n));
  auto scan_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      int64_t neighbors = 0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (data::Distance(points[i], points[j], params.metric) <=
            params.radius) {
          ++neighbors;
          if (neighbors > p) break;
        }
      }
      neighbor_counts[static_cast<size_t>(i)] = neighbors;
    }
  };
  if (options.executor != nullptr) {
    DBS_RETURN_IF_ERROR(options.executor->ParallelFor(n, scan_range));
  } else {
    scan_range(0, n);
  }

  OutlierReport report;
  report.passes = 1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t neighbors = neighbor_counts[static_cast<size_t>(i)];
    if (neighbors <= p) {
      report.outlier_indices.push_back(i);
      report.neighbor_counts.push_back(neighbors);
    }
  }
  report.candidates_checked = n;
  return report;
}

}  // namespace dbs::outlier
