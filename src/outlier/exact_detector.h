// Exact DB(p,k)-outlier detection baselines.
//
// Two variants over an in-memory point set:
//  * kd-tree: counts neighbors with early abort at p+1 per point — the
//    strong exact baseline.
//  * nested loop: the classic O(n^2) block scan with the same early abort,
//    kept as the reference the kd-tree version is validated against and as
//    the "what the paper is trying to avoid" cost yardstick.

#ifndef DBS_OUTLIER_EXACT_DETECTOR_H_
#define DBS_OUTLIER_EXACT_DETECTOR_H_

#include "data/point_set.h"
#include "outlier/db_outlier.h"
#include "util/status.h"

namespace dbs::parallel {
class BatchExecutor;
}  // namespace dbs::parallel

namespace dbs::outlier {

struct ExactDetectorOptions {
  // Optional worker pool (not owned) for the per-point counting pass.
  // Neighbor counts are independent per point and shards write disjoint
  // slots of a flat count array; the report is then assembled in one
  // sequential ascending sweep, so output is identical with 0, 1 or N
  // workers. kUnavailable under executor backpressure.
  parallel::BatchExecutor* executor = nullptr;
};

// Exact detection with a kd-tree (includes building the tree).
[[nodiscard]] Result<OutlierReport> DetectOutliersExact(const data::PointSet& points,
                                          const DbOutlierParams& params);

[[nodiscard]] Result<OutlierReport> DetectOutliersExact(const data::PointSet& points,
                                          const DbOutlierParams& params,
                                          const ExactDetectorOptions& options);

// Exact detection by nested-loop scan with early termination.
[[nodiscard]] Result<OutlierReport> DetectOutliersNestedLoop(const data::PointSet& points,
                                               const DbOutlierParams& params);

// As above, optionally sharding the outer loop over options.executor. Each
// point's inner scan is independent and writes one disjoint count slot, so
// the report is byte-identical at any worker count.
[[nodiscard]] Result<OutlierReport> DetectOutliersNestedLoop(
    const data::PointSet& points, const DbOutlierParams& params,
    const ExactDetectorOptions& options);

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_EXACT_DETECTOR_H_
