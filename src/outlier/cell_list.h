// Cell-list exact DB(p,k)-outlier detection with whole-cell pruning.
//
// DB(p,k) detection is a fixed-radius COUNTING problem: for every point,
// how many others lie within distance D (the paper's k), with an early
// abort at p+1. A uniform grid with bin side ~= D serves that access
// pattern better than a kd-tree: a point's neighbors can only live in the
// 3^d cells around its own (any candidate farther away has a per-axis gap
// > D, which lower-bounds the L2, L1 and Linf distances alike), so the
// counting pass touches a handful of contiguous SoA tiles instead of
// descending a tree per query.
//
// Two whole-cell classification rules run before any pairwise work:
//
//  * DENSE: a cell whose realized point bounding box has metric diameter
//    <= D and which holds at least p+2 points marks every resident a
//    non-outlier — each one has >= p+1 same-cell neighbors — with zero
//    distance evaluations. (Checking the realized per-cell extents rather
//    than the static "side <= D/(2*sqrt(d))" containment condition lets
//    the rule fire for tightly packed cells in any metric and dimension.)
//  * SPARSE: a cell whose full 3^d-neighborhood holds <= p+1 points
//    (i.e. <= p neighbors once a resident excludes itself) marks every
//    resident an outlier before scanning; their exact neighbor counts —
//    the report requires them — are then gathered over that tiny
//    neighborhood, where the early abort can never trigger.
//
// Undecided cells run a branch-free SoA distance kernel over the <= 3^d
// neighbor tiles with the same early abort at p+1 the kd-tree uses.
// Counting is integer and every comparison uses the same floating-point
// expressions as data::SquaredL2 / data::Distance, so the report is
// byte-identical to DetectOutliersExact for all three metrics, and —
// because cells shard over the executor with disjoint per-point count
// slots and a sequential assembly sweep — at any worker count.
//
// Inputs the grid cannot serve (dimension above max_grid_dim, radius 0, or
// a bounding box needing more than max_grid_cells bins) fall back to the
// kd-tree detector, preserving the identical-report contract trivially.

#ifndef DBS_OUTLIER_CELL_LIST_H_
#define DBS_OUTLIER_CELL_LIST_H_

#include <cstdint>

#include "data/point_set.h"
#include "outlier/db_outlier.h"
#include "util/status.h"

namespace dbs::parallel {
class BatchExecutor;
}  // namespace dbs::parallel

namespace dbs::outlier {

// Prune accounting for one DetectOutliersCellList run. Deterministic for a
// fixed input at any worker count: every counter is a sum of per-cell
// integer contributions, and each cell's scan order is fixed (own tile
// first, then the neighbor offsets in lexicographic order).
struct CellListStats {
  // Bins allocated in the grid (product of per-dimension cell counts).
  int64_t grid_cells = 0;
  // Bins holding at least one point.
  int64_t occupied_cells = 0;
  // Cells classified wholesale: all residents non-outliers (dense rule) or
  // all residents outliers (sparse rule) before any per-point scanning.
  int64_t cells_dense_pruned = 0;
  int64_t cells_sparse_pruned = 0;
  // Point-pair distance evaluations performed by the SoA kernel.
  int64_t pairwise_evaluated = 0;
  // True when the kd-tree fallback ran instead of the grid (high dimension,
  // radius 0, or the grid would exceed max_grid_cells). All other counters
  // are zero in that case.
  bool used_fallback = false;
};

struct CellListDetectorOptions {
  // Optional worker pool (not owned) for the per-cell counting pass. Cells
  // are sharded by contiguous range; every cell writes only its own
  // residents' count slots and its own stat slots, and the report is
  // assembled in one sequential index-ascending sweep, so output is
  // identical with 0, 1 or N workers. kUnavailable under backpressure.
  parallel::BatchExecutor* executor = nullptr;
  // Dimensions above this cap fall back to the kd-tree path (the 3^d
  // neighborhood and the grid itself grow exponentially with d).
  int max_grid_dim = 6;
  // Upper bound on allocated grid bins; boxes needing more (tiny radius or
  // extreme aspect ratio) fall back to the kd-tree path.
  int64_t max_grid_cells = int64_t{1} << 21;
  // Optional prune accounting (not owned); filled when non-null.
  CellListStats* stats = nullptr;
};

// Exact detection over a uniform cell list; identical report to
// DetectOutliersExact for every metric, dimension and worker count.
[[nodiscard]] Result<OutlierReport> DetectOutliersCellList(
    const data::PointSet& points, const DbOutlierParams& params);

[[nodiscard]] Result<OutlierReport> DetectOutliersCellList(
    const data::PointSet& points, const DbOutlierParams& params,
    const CellListDetectorOptions& options);

}  // namespace dbs::outlier

#endif  // DBS_OUTLIER_CELL_LIST_H_
