// Fixed-size thread pool with a bounded queue and explicit backpressure.
//
// Density evaluation — the serving hot path and the sampler/outlier scan
// passes alike — is embarrassingly parallel: scores are independent per
// point. The executor's job is mundane but load-bearing: keep a fixed
// number of workers busy, never queue unbounded work, and make overload
// VISIBLE instead of slow. It lives below `density` in the dependency
// stack so estimators and samplers can shard batches without depending on
// the serving layer (which re-exports it as serve::BatchExecutor).
// Admission is
// all-or-nothing and non-blocking: a submission that does not fit in the
// queue returns kUnavailable immediately (the daemon surfaces that to the
// client, who retries or backs off). Nothing in the submission path waits
// on capacity, so a saturated server keeps answering.
//
// ParallelFor is the work-sharding primitive: it splits [0, total) into
// roughly worker-count contiguous shards, admits them as one unit and waits
// for completion. Shards write to disjoint output ranges, so parallel
// execution is bitwise identical to the sequential loop — the property the
// end-to-end serving guarantee rests on.
//
// Shutdown is graceful: queued and in-flight tasks are drained, then the
// workers are joined. Submissions after Shutdown fail with
// kFailedPrecondition.

#ifndef DBS_PARALLEL_BATCH_EXECUTOR_H_
#define DBS_PARALLEL_BATCH_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace dbs::parallel {

struct BatchExecutorOptions {
  // Worker threads; clamped to >= 1.
  int num_workers = 4;
  // Maximum queued (not yet running) tasks; clamped to >= 1.
  int64_t queue_capacity = 256;
  // ParallelFor never makes shards smaller than this many indices — below
  // it, task-dispatch overhead dominates the work itself.
  int64_t min_shard = 256;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(const BatchExecutorOptions& options);
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  // Enqueues one task. Returns kUnavailable when the queue is full and
  // kFailedPrecondition after Shutdown; never blocks.
  [[nodiscard]] Status TrySubmit(std::function<void()> task);

  // Enqueues all tasks or none (single admission decision under one lock),
  // with the same error contract as TrySubmit.
  [[nodiscard]] Status TrySubmitAll(std::vector<std::function<void()>> tasks);

  // Runs fn(begin, end) over disjoint shards covering [0, total) and waits
  // for all of them. Returns kUnavailable without running anything when the
  // queue cannot admit every shard. `fn` must be safe to call concurrently
  // on disjoint ranges. Must not be called from a worker thread (the caller
  // blocks until the shards finish).
  [[nodiscard]] Status ParallelFor(int64_t total,
                     const std::function<void(int64_t, int64_t)>& fn);

  // Drains queued and in-flight tasks, then joins the workers. Idempotent.
  void Shutdown();

  int num_workers() const { return num_workers_; }

  // Currently queued (not yet running) tasks.
  int64_t queue_depth() const;

 private:
  void WorkerLoop();

  const int num_workers_;
  const int64_t queue_capacity_;
  const int64_t min_shard_;

  // Guards queue_ and shutdown_. Leaf lock: released before any queued
  // task runs, so tasks may take their own locks freely.
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dbs::parallel

#endif  // DBS_PARALLEL_BATCH_EXECUTOR_H_
