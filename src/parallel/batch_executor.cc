#include "parallel/batch_executor.h"

#include <algorithm>
#include <utility>

namespace dbs::parallel {

BatchExecutor::BatchExecutor(const BatchExecutorOptions& options)
    : num_workers_(std::max(options.num_workers, 1)),
      queue_capacity_(std::max<int64_t>(options.queue_capacity, 1)),
      min_shard_(std::max<int64_t>(options.min_shard, 1)) {
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchExecutor::~BatchExecutor() { Shutdown(); }

void BatchExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain semantics: even after shutdown, run whatever was admitted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status BatchExecutor::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("executor is shut down");
    }
    if (static_cast<int64_t>(queue_.size()) >= queue_capacity_) {
      return Status::Unavailable("executor queue is full");
    }
    queue_.push_back(std::move(task));
    DBS_ASSERT(static_cast<int64_t>(queue_.size()) <= queue_capacity_,
               "admission must keep the queue within its capacity bound");
  }
  work_ready_.notify_one();
  return Status::Ok();
}

Status BatchExecutor::TrySubmitAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("executor is shut down");
    }
    if (static_cast<int64_t>(queue_.size() + tasks.size()) > queue_capacity_) {
      return Status::Unavailable("executor queue is full");
    }
    for (auto& task : tasks) queue_.push_back(std::move(task));
    DBS_ASSERT(static_cast<int64_t>(queue_.size()) <= queue_capacity_,
               "all-or-nothing admission must keep the queue within its "
               "capacity bound");
  }
  work_ready_.notify_all();
  return Status::Ok();
}

Status BatchExecutor::ParallelFor(
    int64_t total, const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return Status::Ok();

  const int64_t shard =
      std::max(min_shard_, (total + num_workers_ - 1) / num_workers_);
  const int64_t num_shards = (total + shard - 1) / shard;

  // Completion latch shared by the shards. Heap-allocated and shared so the
  // state outlives this frame even if a caller could abandon the wait.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = num_shards;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(num_shards));
  for (int64_t begin = 0; begin < total; begin += shard) {
    const int64_t end = std::min(begin + shard, total);
    tasks.push_back([latch, &fn, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(latch->mu);
      DBS_ASSERT(latch->remaining > 0,
                 "a shard completed after the latch already reached zero");
      if (--latch->remaining == 0) latch->done.notify_all();
    });
  }
  DBS_RETURN_IF_ERROR(TrySubmitAll(std::move(tasks)));

  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
  return Status::Ok();
}

void BatchExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t BatchExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

}  // namespace dbs::parallel
