// Kernel density estimation (paper §2.1, following Gunopulos et al. [9]).
//
// The estimator is built in ONE pass over the data: that pass draws `m`
// kernel centers by reservoir sampling and accumulates per-dimension
// moments, from which Scott/Silverman bandwidths are derived. The density is
//
//   f(x) = (n/m) * sum_i prod_j (1/h_j) K((x_j - c_ij) / h_j)
//
// so that the integral of f over the whole space is ~n ("absolute" density,
// see DensityEstimator). The paper recommends m = 1000 kernels as a robust
// default (§4.4); Fig 7 sweeps this parameter.
//
// Because the Epanechnikov kernel has compact support, centers are bucketed
// into a uniform grid with cells the size of the support box; evaluating
// f(x) then touches only the 3^d cells around x instead of all m centers.
// The index is an internal acceleration only — results are identical with it
// on or off (bench/micro_kde ablates the speedup). Two structural choices
// make the hot path fast (DESIGN.md §9):
//
//   * The grid is a flat open-addressed table: bucket contents live
//     contiguously in one array, looked up by linear probing instead of
//     chasing unordered_map nodes, and the {-1,0,1}^d neighbor-offset
//     pattern is precomputed once at BuildIndex time instead of being
//     re-enumerated per evaluation.
//   * EvaluateBatch sorts query points by grid cell, gathers each cell
//     group's neighborhood once into a contiguous SoA tile (dim × tile
//     arrays) and runs a branch-light, auto-vectorizable product-kernel
//     loop over it — bitwise identical to per-point Evaluate, per-point
//     independent, and therefore shardable across executor workers.

#ifndef DBS_DENSITY_KDE_H_
#define DBS_DENSITY_KDE_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/dataset.h"
#include "data/point_set.h"
#include "density/bandwidth.h"
#include "density/density_estimator.h"
#include "density/kernel.h"
#include "util/shard.h"
#include "util/status.h"

namespace dbs::density {

struct PartialKde;  // density/kde_partial.h

struct KdeOptions {
  // Number of kernel centers (the paper's recommended default).
  int64_t num_kernels = 1000;
  KernelType kernel = KernelType::kEpanechnikov;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  // Used only with BandwidthRule::kFixed.
  double fixed_bandwidth = 0.0;
  // Multiplier applied to the rule-derived bandwidths. The normal-reference
  // rules assume a unimodal density and oversmooth clustered data; values
  // in [0.2, 0.5] sharpen the estimate when clusters are much smaller than
  // the data spread. 1.0 uses the rule as-is.
  double bandwidth_scale = 1.0;
  // Seed for the center-sampling reservoir.
  uint64_t seed = 1;
  // Build the compact-support grid index (identical results, faster eval).
  bool use_grid_index = true;
  // Gate for the dual-tree evaluator's approximate mode (see
  // density/dual_tree_kde.h — the fit itself is unaffected). 0 keeps the
  // evaluator exact; > 0 lets it take a node's contribution interval
  // midpoint once the interval is within this certified relative error
  // budget. Consumed by DualTreeKde::Build(kde, fit_options).
  double dual_tree_rel_error = 0.0;
};

class Kde final : public DensityEstimator {
 public:
  // Builds the estimator in a single pass over `scan`.
  [[nodiscard]] static Result<Kde> Fit(data::DataScan& scan, const KdeOptions& options);

  // Convenience overload for in-memory data (still a single logical pass).
  [[nodiscard]] static Result<Kde> Fit(const data::PointSet& points,
                         const KdeOptions& options);

  // Sharded build (DESIGN.md §12): scans one shard's slice and emits a
  // mergeable partial state. `scan` must cover exactly the rows of
  // ShardRowRange(info.total_rows, info.num_shards, info.shard) — wrap the
  // full dataset in a data::RangeScan. Kernel centers are reservoir-sampled
  // at the shard's proportional quota with the shard-seeded RNG stream, so
  // FinalizeKde over all shards' partials reconstructs a model of the same
  // shape Fit builds — bitwise identical to Fit when info.num_shards == 1
  // (Fit itself is implemented as FitPartial + FinalizeKde).
  [[nodiscard]] static Result<PartialKde> FitPartial(data::DataScan& scan,
                                       const KdeOptions& options,
                                       const ShardInfo& info);

  int dim() const override { return centers_.dim(); }
  double Evaluate(data::PointView p) const override;
  int64_t total_mass() const override { return n_; }
  // Leave-one-out evaluation: skips kernel centers whose coordinates equal
  // `self` exactly (centers are verbatim copies of data points, so a data
  // point that became a center is recognized bitwise).
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override;

  // Tuned batch paths (see header comment): bitwise identical to the
  // per-point calls, kUnavailable only under executor backpressure.
  [[nodiscard]] Status EvaluateBatch(const double* rows, int64_t count, double* out,
                       parallel::BatchExecutor* executor =
                           nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingBatch(const double* rows, int64_t count,
                                double* out,
                                parallel::BatchExecutor* executor =
                                    nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingSelvesBatch(const double* rows,
                                      const double* selves, int64_t count,
                                      double* out,
                                      parallel::BatchExecutor* executor =
                                          nullptr) const override;

  // Average of Evaluate(c)^a over the kernel centers. Since the centers are
  // a uniform sample of the data, n * MeanDensityPow(a) is an unbiased
  // estimate of the normalizer k_a = sum_x f(x)^a — the quantity the
  // one-pass sampler variant uses in place of an exact normalization pass.
  // Evaluation goes through the batch path; an optional executor shards it
  // (falling back to the sequential path under backpressure, so the result
  // is always the same and always produced).
  double MeanDensityPow(double a,
                        parallel::BatchExecutor* executor = nullptr) const;

  // Average density of the data's bounding box: total_mass / Volume. The
  // densities above/below this threshold are the regions the paper calls
  // denser/sparser than the data-space average.
  double AverageDensity() const override;

  int64_t num_kernels() const { return centers_.size(); }
  const data::PointSet& centers() const { return centers_; }
  const std::vector<double>& bandwidths() const { return bandwidths_; }
  const data::BoundingBox& bounds() const { return bounds_; }

  // Evaluates with the grid index disabled (for testing/ablation).
  double EvaluateBrute(data::PointView p) const;

  // Serialization support (see density/kde_io.h): a value-type snapshot of
  // the fitted model, sufficient to reconstruct it exactly.
  struct State {
    int64_t n = 0;
    KernelType kernel = KernelType::kEpanechnikov;
    data::PointSet centers;
    std::vector<double> bandwidths;
    data::BoundingBox bounds;
  };
  State ExportState() const;
  [[nodiscard]] static Result<Kde> FromState(State state, bool rebuild_index = true);

 private:
  struct TileScratch;

  Kde() = default;

  void BuildIndex();
  // Column-major copy of the centers for the batch paths (built always).
  void BuildSoA();
  // Flat-table lookup: [*begin, *end) into cell_centers_ when found.
  bool FindBucket(uint64_t key, int32_t* begin, int32_t* end) const;
  // Gathers the 3^d-neighborhood of `base_cell` into scratch (center
  // indices + SoA tile) in the canonical visit order; returns tile size.
  int64_t GatherTile(const int64_t* base_cell, TileScratch* scratch) const;
  // Ordered kernel-product sum of `p` against a SoA tile; `exclude` is the
  // coordinates of a center to skip (nullptr = none).
  double SumTile(const double* p, const double* soa, int64_t tile,
                 const double* exclude) const;
  // `selves` is a parallel row-major array of exclusion points (nullptr =
  // exclude nothing; pass `rows` itself for leave-one-out), indexed like
  // `rows` — point i excludes selves + i*dim.
  void BatchRangeIndexed(const double* rows, const double* selves,
                         int64_t begin, int64_t end, double* out) const;
  void BatchRangeBrute(const double* rows, const double* selves,
                       int64_t begin, int64_t end, double* out) const;
  // Kernel sum at p via the grid index, skipping centers whose coordinates
  // equal `exclude` (pass a default PointView to skip nothing).
  double SumIndexed(data::PointView p, data::PointView exclude) const;
  double SumBrute(data::PointView p, data::PointView exclude) const;

  int64_t n_ = 0;
  KernelType kernel_ = KernelType::kEpanechnikov;
  data::PointSet centers_;
  std::vector<double> bandwidths_;      // per dimension
  std::vector<double> inv_bandwidths_;  // 1/h_j
  double norm_factor_ = 0.0;            // (n/m) * prod_j (1/h_j)
  data::BoundingBox bounds_;

  // Grid index over centers. Cell extent along j = support_radius * h_j.
  // The index is a flat open-addressed table: a cell's centers occupy
  // [slot_begin_[s], slot_end_[s]) of cell_centers_, in center-index order
  // (the order the old per-bucket vectors had — the summation-order
  // contract the bitwise guarantees rest on).
  bool indexed_ = false;
  double support_radius_ = 1.0;
  std::vector<double> cell_extent_;
  uint64_t slot_mask_ = 0;
  std::vector<uint64_t> slot_keys_;
  std::vector<int32_t> slot_begin_;  // -1 marks an empty slot
  std::vector<int32_t> slot_end_;
  std::vector<int32_t> cell_centers_;
  // {-1,0,1}^d neighbor-offset pattern, row-major (3^d x d), precomputed at
  // BuildIndex time instead of re-enumerated per evaluation.
  int num_neighbor_cells_ = 0;
  std::vector<int64_t> neighbor_offsets_;
  // centers_ transposed: dim arrays of length m (centers_soa_[j*m + i] =
  // centers_[i][j]); the contiguous columns the batch inner loop streams.
  std::vector<double> centers_soa_;
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_KDE_H_
