// Kernel density estimation (paper §2.1, following Gunopulos et al. [9]).
//
// The estimator is built in ONE pass over the data: that pass draws `m`
// kernel centers by reservoir sampling and accumulates per-dimension
// moments, from which Scott/Silverman bandwidths are derived. The density is
//
//   f(x) = (n/m) * sum_i prod_j (1/h_j) K((x_j - c_ij) / h_j)
//
// so that the integral of f over the whole space is ~n ("absolute" density,
// see DensityEstimator). The paper recommends m = 1000 kernels as a robust
// default (§4.4); Fig 7 sweeps this parameter.
//
// Because the Epanechnikov kernel has compact support, centers are bucketed
// into a uniform grid with cells the size of the support box; evaluating
// f(x) then touches only the 3^d cells around x instead of all m centers.
// The index is an internal acceleration only — results are identical with it
// on or off (bench/micro_kde ablates the speedup).

#ifndef DBS_DENSITY_KDE_H_
#define DBS_DENSITY_KDE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/bounds.h"
#include "data/dataset.h"
#include "data/point_set.h"
#include "density/bandwidth.h"
#include "density/density_estimator.h"
#include "density/kernel.h"
#include "util/status.h"

namespace dbs::density {

struct KdeOptions {
  // Number of kernel centers (the paper's recommended default).
  int64_t num_kernels = 1000;
  KernelType kernel = KernelType::kEpanechnikov;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  // Used only with BandwidthRule::kFixed.
  double fixed_bandwidth = 0.0;
  // Multiplier applied to the rule-derived bandwidths. The normal-reference
  // rules assume a unimodal density and oversmooth clustered data; values
  // in [0.2, 0.5] sharpen the estimate when clusters are much smaller than
  // the data spread. 1.0 uses the rule as-is.
  double bandwidth_scale = 1.0;
  // Seed for the center-sampling reservoir.
  uint64_t seed = 1;
  // Build the compact-support grid index (identical results, faster eval).
  bool use_grid_index = true;
};

class Kde final : public DensityEstimator {
 public:
  // Builds the estimator in a single pass over `scan`.
  static Result<Kde> Fit(data::DataScan& scan, const KdeOptions& options);

  // Convenience overload for in-memory data (still a single logical pass).
  static Result<Kde> Fit(const data::PointSet& points,
                         const KdeOptions& options);

  int dim() const override { return centers_.dim(); }
  double Evaluate(data::PointView p) const override;
  int64_t total_mass() const override { return n_; }
  // Leave-one-out evaluation: skips kernel centers whose coordinates equal
  // `self` exactly (centers are verbatim copies of data points, so a data
  // point that became a center is recognized bitwise).
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override;

  // Average of Evaluate(c)^a over the kernel centers. Since the centers are
  // a uniform sample of the data, n * MeanDensityPow(a) is an unbiased
  // estimate of the normalizer k_a = sum_x f(x)^a — the quantity the
  // one-pass sampler variant uses in place of an exact normalization pass.
  double MeanDensityPow(double a) const;

  // Average density of the data's bounding box: total_mass / Volume. The
  // densities above/below this threshold are the regions the paper calls
  // denser/sparser than the data-space average.
  double AverageDensity() const override;

  int64_t num_kernels() const { return centers_.size(); }
  const data::PointSet& centers() const { return centers_; }
  const std::vector<double>& bandwidths() const { return bandwidths_; }
  const data::BoundingBox& bounds() const { return bounds_; }

  // Evaluates with the grid index disabled (for testing/ablation).
  double EvaluateBrute(data::PointView p) const;

  // Serialization support (see density/kde_io.h): a value-type snapshot of
  // the fitted model, sufficient to reconstruct it exactly.
  struct State {
    int64_t n = 0;
    KernelType kernel = KernelType::kEpanechnikov;
    data::PointSet centers;
    std::vector<double> bandwidths;
    data::BoundingBox bounds;
  };
  State ExportState() const;
  static Result<Kde> FromState(State state, bool rebuild_index = true);

 private:
  Kde() = default;

  void BuildIndex();
  uint64_t CellKey(const int64_t* cell) const;
  // Kernel sum at p via the grid index, skipping centers whose coordinates
  // equal `exclude` (pass a default PointView to skip nothing).
  double SumIndexed(data::PointView p, data::PointView exclude) const;
  double SumBrute(data::PointView p, data::PointView exclude) const;

  int64_t n_ = 0;
  KernelType kernel_ = KernelType::kEpanechnikov;
  data::PointSet centers_;
  std::vector<double> bandwidths_;      // per dimension
  std::vector<double> inv_bandwidths_;  // 1/h_j
  double norm_factor_ = 0.0;            // (n/m) * prod_j (1/h_j)
  data::BoundingBox bounds_;

  // Grid index over centers. Cell extent along j = support_radius * h_j.
  bool indexed_ = false;
  double support_radius_ = 1.0;
  std::vector<double> cell_extent_;
  std::unordered_map<uint64_t, std::vector<int32_t>> grid_;
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_KDE_H_
