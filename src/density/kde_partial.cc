#include "density/kde_partial.h"

#include <utility>

#include "data/dataset.h"
#include "density/bandwidth.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

[[nodiscard]] Status ValidateFitOptions(const KdeOptions& options, int dim) {
  if (options.num_kernels <= 0) {
    return Status::InvalidArgument("num_kernels must be positive");
  }
  if (options.bandwidth_rule == BandwidthRule::kFixed &&
      options.fixed_bandwidth <= 0) {
    return Status::InvalidArgument(
        "fixed bandwidth rule requires fixed_bandwidth > 0");
  }
  if (options.bandwidth_scale <= 0) {
    return Status::InvalidArgument("bandwidth_scale must be positive");
  }
  if (dim <= 0) {
    return Status::InvalidArgument("scan must have positive dimensionality");
  }
  return Status::Ok();
}

}  // namespace

Result<PartialKde> Kde::FitPartial(data::DataScan& scan,
                                   const KdeOptions& options,
                                   const ShardInfo& info) {
  const int dim = scan.dim();
  DBS_RETURN_IF_ERROR(ValidateFitOptions(options, dim));
  DBS_RETURN_IF_ERROR(ValidateShardInfo(info));
  const RowRange range =
      ShardRowRange(info.total_rows, info.num_shards, info.shard);
  if (scan.size() != range.size()) {
    return Status::InvalidArgument(
        "scan does not cover the shard's row range");
  }
  const int64_t m_target = ShardKernelAllocation(
      info.total_rows, info.num_shards,
      options.num_kernels)[static_cast<size_t>(info.shard)];

  KdeShardPart part;
  part.shard = info.shard;
  part.num_shards = info.num_shards;
  part.total_rows = info.total_rows;
  part.centers = data::PointSet(dim);
  part.moments.resize(static_cast<size_t>(dim));
  part.bounds = data::BoundingBox(dim);

  // Single pass over the shard's slice: reservoir-sample the shard's center
  // quota (Vitter's Algorithm R), accumulate moments and bounds — the exact
  // loop Kde::Fit always ran, consuming the shard-seeded RNG stream.
  Rng rng(ShardSeed(options.seed, info.shard));
  scan.Reset();
  data::ScanBatch batch;
  int64_t seen = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView p = batch.point(i, dim);
      part.bounds.Extend(p);
      for (int j = 0; j < dim; ++j) {
        part.moments[static_cast<size_t>(j)].Add(p[j]);
      }
      if (seen < m_target) {
        part.centers.Append(p);
      } else {
        int64_t slot = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(seen + 1)));
        if (slot < m_target) {
          data::PointView src = p;
          double* dst = part.centers.MutableRow(slot);
          for (int j = 0; j < dim; ++j) dst[j] = src[j];
        }
      }
      ++seen;
    }
  }
  part.rows = seen;

  PartialKde partial;
  partial.parts.push_back(std::move(part));
  return partial;
}

[[nodiscard]] Result<PartialKde> MergePartialKde(PartialKde a, PartialKde b) {
  if (!a.parts.empty() && !b.parts.empty() &&
      a.parts.front().centers.dim() != b.parts.front().centers.dim()) {
    return Status::InvalidArgument(
        "cannot merge partial KDE states of different dimensionality");
  }
  DBS_RETURN_IF_ERROR(MergeShardParts(&a.parts, std::move(b.parts)));
  return a;
}

[[nodiscard]] Result<Kde> FinalizeKde(PartialKde partial, const KdeOptions& options) {
  if (partial.parts.empty()) {
    return Status::InvalidArgument("partial KDE state has no shards");
  }
  const int dim = partial.dim();
  DBS_RETURN_IF_ERROR(ValidateFitOptions(options, dim));
  const int64_t num_shards = partial.parts.front().num_shards;
  if (static_cast<int64_t>(partial.parts.size()) != num_shards) {
    return Status::InvalidArgument(
        "partial KDE state is incomplete: not every shard is present");
  }
  for (size_t i = 0; i < partial.parts.size(); ++i) {
    const KdeShardPart& part = partial.parts[i];
    if (part.shard != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "partial KDE state is incomplete: not every shard is present");
    }
    if (part.centers.dim() != dim ||
        static_cast<int>(part.moments.size()) != dim) {
      return Status::InvalidArgument(
          "partial KDE shard has inconsistent dimensionality");
    }
  }

  // The one reduction point: ascending shard order, exactly once. Centers
  // concatenate (each shard's reservoir is already a uniform sample of its
  // slice at the proportional rate), moments merge with Chan's update, and
  // the bandwidth tail repeats Kde::Fit's arithmetic verbatim.
  int64_t n = 0;
  data::PointSet centers = std::move(partial.parts.front().centers);
  std::vector<OnlineMoments> moments =
      std::move(partial.parts.front().moments);
  data::BoundingBox bounds = std::move(partial.parts.front().bounds);
  n = partial.parts.front().rows;
  for (size_t i = 1; i < partial.parts.size(); ++i) {
    KdeShardPart& part = partial.parts[i];
    n += part.rows;
    centers.AppendAll(part.centers);
    for (int j = 0; j < dim; ++j) {
      moments[static_cast<size_t>(j)].Merge(
          part.moments[static_cast<size_t>(j)]);
    }
    bounds.Extend(part.bounds);
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot fit a KDE on an empty dataset");
  }

  std::vector<double> sigma(static_cast<size_t>(dim));
  for (int j = 0; j < dim; ++j) {
    sigma[static_cast<size_t>(j)] =
        moments[static_cast<size_t>(j)].sample_stddev();
  }
  Kde::State state;
  state.n = n;
  state.kernel = options.kernel;
  state.bandwidths =
      ComputeBandwidths(options.bandwidth_rule, options.kernel, sigma,
                        centers.size(), options.fixed_bandwidth);
  for (double& h : state.bandwidths) h *= options.bandwidth_scale;
  state.centers = std::move(centers);
  state.bounds = std::move(bounds);
  return Kde::FromState(std::move(state), options.use_grid_index);
}

}  // namespace dbs::density
