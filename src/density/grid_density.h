// Hashed-grid density estimator — the Palmer–Faloutsos substrate.
//
// Reimplementation of the density summary used by "Density Biased Sampling:
// An Improved Method for Data Mining and Clustering" (SIGMOD 2000), the
// paper's main prior-work comparator [22]. Space is cut into g^d equi-width
// cells; because g^d can vastly exceed memory, cells are HASHED into a
// fixed-size bucket table and DISTINCT CELLS THAT COLLIDE MERGE THEIR
// COUNTS. That collision-induced blurring is exactly the quality
// degradation the paper attributes to the approach (§1.1, §4.3), so the
// bucket budget is an explicit knob here (memory_budget_bytes).
//
// GridDensity is also a DensityEstimator: Evaluate(p) returns the merged
// count of p's bucket divided by the cell volume, so it can drive the
// generic BiasedSampler as an alternative to the KDE. The grid-specific
// sampler of [22] (per-cell exponent e) lives in core/grid_biased_sampler.

#ifndef DBS_DENSITY_GRID_DENSITY_H_
#define DBS_DENSITY_GRID_DENSITY_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/dataset.h"
#include "density/density_estimator.h"
#include "util/status.h"

namespace dbs::density {

struct GridDensityOptions {
  // Cells per dimension. g^d logical cells overall.
  int cells_per_dim = 64;
  // Hash-table budget; each bucket costs 8 bytes (a count). The SIGMOD'00
  // evaluation allowed 5 MB; the paper's comparison (§4.3) uses the same.
  int64_t memory_budget_bytes = 5 * 1024 * 1024;
  // Optional known domain. When empty, an extra pass computes the bounds.
  data::BoundingBox bounds;
};

class GridDensity final : public DensityEstimator {
 public:
  // Builds the summary in one pass (two if bounds must be discovered).
  [[nodiscard]] static Result<GridDensity> Fit(data::DataScan& scan,
                                 const GridDensityOptions& options);
  [[nodiscard]] static Result<GridDensity> Fit(const data::PointSet& points,
                                 const GridDensityOptions& options);

  int dim() const override { return dim_; }
  double Evaluate(data::PointView p) const override;
  int64_t total_mass() const override { return n_; }
  double AverageDensity() const override {
    double volume = bounds_.Volume();
    return volume > 0 ? static_cast<double>(n_) / volume
                      : static_cast<double>(n_);
  }
  // Subtracts the one count `self` contributed when it shares x's bucket.
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override;

  // Cell-sorted batch overrides, mirroring the Kde flat-table design
  // (kde.h): queries are sorted by bucket id so each bucket group pays for
  // its count lookup and count/cell_volume_ division ONCE instead of per
  // point. Identical operands give identical doubles, so results stay
  // bitwise equal to the scalar calls; same executor/backpressure contract
  // as the base class.
  [[nodiscard]] Status EvaluateBatch(const double* rows, int64_t count, double* out,
                       parallel::BatchExecutor* executor =
                           nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingBatch(const double* rows, int64_t count,
                                double* out,
                                parallel::BatchExecutor* executor =
                                    nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingSelvesBatch(const double* rows,
                                      const double* selves, int64_t count,
                                      double* out,
                                      parallel::BatchExecutor* executor =
                                          nullptr) const override;

  // Merged count of the bucket that p's cell hashes to.
  int64_t CellCount(data::PointView p) const;

  // Bucket index of p's cell (stable for the lifetime of the summary).
  int64_t BucketOf(data::PointView p) const;

  // sum over buckets of count^e — the normalizer used by the [22]-style
  // sampler. Note this is a sum over BUCKETS: collisions fold distinct
  // cells together, which is faithful to the hash-based original.
  double SumCountPow(double e) const;

  int64_t num_buckets() const {
    return static_cast<int64_t>(bucket_counts_.size());
  }
  int64_t num_occupied_buckets() const;
  // True when the logical grid exceeded the memory budget and cells are
  // hashed (collisions possible); false means exact direct addressing.
  bool hashed() const { return hashed_; }
  double cell_volume() const { return cell_volume_; }
  const data::BoundingBox& bounds() const { return bounds_; }

 private:
  GridDensity() = default;

  // Bucket-sorted evaluation of one contiguous range; `selves` is a
  // parallel exclusion array indexed like `rows` (nullptr = none).
  void BatchRange(const double* rows, const double* selves, int64_t begin,
                  int64_t end, double* out) const;

  int dim_ = 0;
  int cells_per_dim_ = 0;
  bool hashed_ = false;
  int64_t n_ = 0;
  double cell_volume_ = 0.0;
  data::BoundingBox bounds_;
  std::vector<double> cell_width_;  // per dimension
  std::vector<int64_t> bucket_counts_;
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_GRID_DENSITY_H_
