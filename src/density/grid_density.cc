#include "density/grid_density.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/math.h"

namespace dbs::density {
namespace {

uint64_t HashCellId(const int64_t* cell, int dim) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int j = 0; j < dim; ++j) {
    uint64_t v = static_cast<uint64_t>(cell[j]) + 0x9e3779b97f4a7c15ULL;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    h = (h * 0xc4ceb9fe1a85ec53ULL) ^ v;
  }
  return h ^ (h >> 31);
}

}  // namespace

Result<GridDensity> GridDensity::Fit(data::DataScan& scan,
                                     const GridDensityOptions& options) {
  if (options.cells_per_dim <= 0) {
    return Status::InvalidArgument("cells_per_dim must be positive");
  }
  if (options.memory_budget_bytes < 64) {
    return Status::InvalidArgument("memory budget is unusably small");
  }
  const int dim = scan.dim();
  if (dim <= 0) {
    return Status::InvalidArgument("scan must have positive dimensionality");
  }

  GridDensity gd;
  gd.dim_ = dim;
  gd.cells_per_dim_ = options.cells_per_dim;

  if (options.bounds.empty()) {
    // Discovery pass for the domain.
    gd.bounds_ = data::BoundingBox(dim);
    scan.Reset();
    data::ScanBatch batch;
    while (scan.NextBatch(&batch)) {
      for (int64_t i = 0; i < batch.count; ++i) {
        gd.bounds_.Extend(batch.point(i, dim));
      }
    }
    if (gd.bounds_.empty()) {
      return Status::InvalidArgument("cannot fit a grid on an empty dataset");
    }
  } else {
    if (options.bounds.dim() != dim) {
      return Status::InvalidArgument("bounds dimensionality mismatch");
    }
    gd.bounds_ = options.bounds;
  }

  gd.cell_width_.resize(dim);
  gd.cell_volume_ = 1.0;
  for (int j = 0; j < dim; ++j) {
    double ext = gd.bounds_.extent(j);
    // A degenerate dimension still needs a positive width so every point
    // lands in cell 0 there.
    gd.cell_width_[j] =
        ext > 0 ? ext / gd.cells_per_dim_ : 1.0;
    gd.cell_volume_ *= gd.cell_width_[j];
  }

  // When every logical cell fits in the memory budget (8 bytes per count),
  // address cells directly — no collisions. Otherwise hash into however
  // many buckets the budget allows; distinct cells then merge, which is the
  // degradation mode of [22] this substrate reproduces.
  int64_t budget_buckets = std::max<int64_t>(options.memory_budget_bytes / 8,
                                             1);
  double logical = std::pow(static_cast<double>(options.cells_per_dim), dim);
  gd.hashed_ = logical > static_cast<double>(budget_buckets);
  int64_t num_buckets =
      gd.hashed_ ? budget_buckets : static_cast<int64_t>(logical);
  gd.bucket_counts_.assign(static_cast<size_t>(num_buckets), 0);

  // Counting pass.
  scan.Reset();
  data::ScanBatch batch;
  int64_t n = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      ++gd.bucket_counts_[static_cast<size_t>(gd.BucketOf(
          batch.point(i, dim)))];
      ++n;
    }
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot fit a grid on an empty dataset");
  }
  gd.n_ = n;
  return gd;
}

Result<GridDensity> GridDensity::Fit(const data::PointSet& points,
                                     const GridDensityOptions& options) {
  data::InMemoryScan scan(&points);
  return Fit(scan, options);
}

int64_t GridDensity::BucketOf(data::PointView p) const {
  DBS_DCHECK(p.dim() == dim_);
  int64_t cell[16];
  DBS_CHECK(dim_ <= 16);
  for (int j = 0; j < dim_; ++j) {
    int64_t c = static_cast<int64_t>(
        std::floor((p[j] - bounds_.lo(j)) / cell_width_[j]));
    cell[j] = std::clamp<int64_t>(c, 0, cells_per_dim_ - 1);
  }
  if (!hashed_) {
    int64_t linear = 0;
    for (int j = 0; j < dim_; ++j) linear = linear * cells_per_dim_ + cell[j];
    return linear;
  }
  return static_cast<int64_t>(HashCellId(cell, dim_) %
                              static_cast<uint64_t>(bucket_counts_.size()));
}

int64_t GridDensity::CellCount(data::PointView p) const {
  return bucket_counts_[static_cast<size_t>(BucketOf(p))];
}

double GridDensity::Evaluate(data::PointView p) const {
  return static_cast<double>(CellCount(p)) / cell_volume_;
}

double GridDensity::EvaluateExcluding(data::PointView x,
                                      data::PointView self) const {
  int64_t count = CellCount(x);
  if (BucketOf(x) == BucketOf(self) && count > 0) --count;
  return static_cast<double>(count) / cell_volume_;
}

void GridDensity::BatchRange(const double* rows, const double* selves,
                             int64_t begin, int64_t end, double* out) const {
  const int d = dim_;
  const int64_t n = end - begin;
  // Sort the range's points by bucket id; Evaluate depends only on the
  // bucket (hash-colliding cells already share counts), so grouping by it
  // is exact, and per-point results are order-independent.
  std::vector<std::pair<int64_t, int64_t>> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    order[static_cast<size_t>(i)] = {
        BucketOf(data::PointView(rows + (begin + i) * d, d)), i};
  }
  std::sort(order.begin(), order.end());
  int64_t g = 0;
  while (g < n) {
    const int64_t bucket = order[static_cast<size_t>(g)].first;
    int64_t h = g + 1;
    while (h < n && order[static_cast<size_t>(h)].first == bucket) ++h;
    // One lookup and one division per group — the same operands the scalar
    // path divides per point, so the same double comes out.
    const int64_t count = bucket_counts_[static_cast<size_t>(bucket)];
    const double value = static_cast<double>(count) / cell_volume_;
    const double excl_value =
        static_cast<double>(count > 0 ? count - 1 : count) / cell_volume_;
    for (int64_t k = g; k < h; ++k) {
      const int64_t i = order[static_cast<size_t>(k)].second;
      double v = value;
      if (selves != nullptr &&
          BucketOf(data::PointView(selves + (begin + i) * d, d)) == bucket) {
        v = excl_value;
      }
      out[begin + i] = v;
    }
    g = h;
  }
}

Status GridDensity::EvaluateBatch(const double* rows, int64_t count,
                                  double* out,
                                  parallel::BatchExecutor* executor) const {
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/nullptr, count, out,
                                      executor);
}

Status GridDensity::EvaluateExcludingBatch(
    const double* rows, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/rows, count, out,
                                      executor);
}

Status GridDensity::EvaluateExcludingSelvesBatch(
    const double* rows, const double* selves, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  auto shard = [&](int64_t begin, int64_t end) {
    BatchRange(rows, selves, begin, end, out);
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

double GridDensity::SumCountPow(double e) const {
  double sum = 0.0;
  for (int64_t c : bucket_counts_) {
    if (c > 0) sum += SafePow(static_cast<double>(c), e);
  }
  return sum;
}

int64_t GridDensity::num_occupied_buckets() const {
  int64_t occupied = 0;
  for (int64_t c : bucket_counts_) {
    if (c > 0) ++occupied;
  }
  return occupied;
}

}  // namespace dbs::density
