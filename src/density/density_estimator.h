// Abstract density-estimator interface.
//
// An estimator f approximates the data density in absolute terms: for a
// region R, the integral of f over R approximates the number of points in R
// (paper §2). Consequently the integral over the whole space is ~n, and the
// "average density" of a dataset scaled to [0,1]^d is ~n. Anything that
// satisfies this contract can drive the biased sampler — the paper stresses
// that its framework is independent of the estimation technique.

#ifndef DBS_DENSITY_DENSITY_ESTIMATOR_H_
#define DBS_DENSITY_DENSITY_ESTIMATOR_H_

#include <cstdint>

#include "data/point_set.h"

namespace dbs::density {

class DensityEstimator {
 public:
  virtual ~DensityEstimator() = default;

  virtual int dim() const = 0;

  // Estimated local density at p, in points per unit volume.
  virtual double Evaluate(data::PointView p) const = 0;

  // Number of data points the estimator was built over (the approximate
  // integral of Evaluate over the whole domain).
  virtual int64_t total_mass() const = 0;

  // Average density of the data domain: total_mass / Volume(bounding box).
  // Anchors relative thresholds (e.g. the biased sampler's density floor).
  // The default assumes a unit-volume domain.
  virtual double AverageDensity() const {
    return static_cast<double>(total_mass());
  }

  // Density at x EXCLUDING the contribution of a data point located at
  // `self`. Expected-neighbor-count consumers (the outlier detector) use
  // this so a point's own mass — e.g. when it was sampled as a kernel
  // center, where it carries n/m of the total — cannot mask it from being
  // scored as isolated. The default subtracts nothing.
  virtual double EvaluateExcluding(data::PointView x,
                                   data::PointView self) const {
    (void)self;
    return Evaluate(x);
  }
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_DENSITY_ESTIMATOR_H_
