// Abstract density-estimator interface.
//
// An estimator f approximates the data density in absolute terms: for a
// region R, the integral of f over R approximates the number of points in R
// (paper §2). Consequently the integral over the whole space is ~n, and the
// "average density" of a dataset scaled to [0,1]^d is ~n. Anything that
// satisfies this contract can drive the biased sampler — the paper stresses
// that its framework is independent of the estimation technique.

#ifndef DBS_DENSITY_DENSITY_ESTIMATOR_H_
#define DBS_DENSITY_DENSITY_ESTIMATOR_H_

#include <cstdint>

#include "data/point_set.h"
#include "parallel/batch_executor.h"
#include "util/status.h"

namespace dbs::density {

class DensityEstimator {
 public:
  virtual ~DensityEstimator() = default;

  virtual int dim() const = 0;

  // Estimated local density at p, in points per unit volume.
  virtual double Evaluate(data::PointView p) const = 0;

  // Batch evaluation over `count` row-major points (count * dim() doubles):
  // out[i] = Evaluate(row i), BITWISE — batching (and sharding across
  // `executor`'s workers, when one is supplied) is an execution detail, not
  // a semantic one, because every point is evaluated independently with the
  // same per-point arithmetic. Backends override this to amortize per-point
  // work (see Kde); the default is the scalar loop. With an executor the
  // call can fail with kUnavailable under queue backpressure, in which case
  // `out` contents are unspecified; without one it always succeeds. Must
  // not be called from an executor worker thread (ParallelFor blocks).
  [[nodiscard]] virtual Status EvaluateBatch(const double* rows, int64_t count, double* out,
                               parallel::BatchExecutor* executor =
                                   nullptr) const;

  // Batch leave-one-out evaluation: out[i] = EvaluateExcluding(row i,
  // row i), i.e. each point excludes its own contribution — the form the
  // outlier scorer consumes. Same bitwise/backpressure contract as
  // EvaluateBatch.
  [[nodiscard]] virtual Status EvaluateExcludingBatch(const double* rows, int64_t count,
                                        double* out,
                                        parallel::BatchExecutor* executor =
                                            nullptr) const;

  // Batch leave-one-out evaluation against EXPLICIT exclusion points:
  // out[i] = EvaluateExcluding(row i of `rows`, row i of `selves`), where
  // `selves` is a second row-major array of `count` points. This is the form
  // the QMC ball integrator consumes: every probe row excludes the mass of
  // the ball CENTER it was expanded from, not the probe location itself.
  // Same bitwise/backpressure contract as EvaluateBatch.
  [[nodiscard]] virtual Status EvaluateExcludingSelvesBatch(const double* rows,
                                              const double* selves,
                                              int64_t count, double* out,
                                              parallel::BatchExecutor*
                                                  executor = nullptr) const;

  // Number of data points the estimator was built over (the approximate
  // integral of Evaluate over the whole domain).
  virtual int64_t total_mass() const = 0;

  // Average density of the data domain: total_mass / Volume(bounding box).
  // Anchors relative thresholds (e.g. the biased sampler's density floor).
  // The default assumes a unit-volume domain.
  virtual double AverageDensity() const {
    return static_cast<double>(total_mass());
  }

  // Density at x EXCLUDING the contribution of a data point located at
  // `self`. Expected-neighbor-count consumers (the outlier detector) use
  // this so a point's own mass — e.g. when it was sampled as a kernel
  // center, where it carries n/m of the total — cannot mask it from being
  // scored as isolated. The default subtracts nothing.
  virtual double EvaluateExcluding(data::PointView x,
                                   data::PointView self) const {
    (void)self;
    return Evaluate(x);
  }
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_DENSITY_ESTIMATOR_H_
