#include "density/histogram_density.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace dbs::density {

Result<HistogramDensity> HistogramDensity::Fit(
    data::DataScan& scan, const HistogramDensityOptions& options) {
  if (options.cells_per_dim <= 0) {
    return Status::InvalidArgument("cells_per_dim must be positive");
  }
  const int dim = scan.dim();
  if (dim <= 0) {
    return Status::InvalidArgument("scan must have positive dimensionality");
  }
  double logical = std::pow(static_cast<double>(options.cells_per_dim), dim);
  if (logical > static_cast<double>(options.max_cells)) {
    return Status::InvalidArgument(
        "histogram would exceed max_cells; use GridDensity for high "
        "dimensionality");
  }

  HistogramDensity hd;
  hd.dim_ = dim;
  hd.cells_per_dim_ = options.cells_per_dim;

  if (options.bounds.empty()) {
    hd.bounds_ = data::BoundingBox(dim);
    scan.Reset();
    data::ScanBatch batch;
    while (scan.NextBatch(&batch)) {
      for (int64_t i = 0; i < batch.count; ++i) {
        hd.bounds_.Extend(batch.point(i, dim));
      }
    }
    if (hd.bounds_.empty()) {
      return Status::InvalidArgument(
          "cannot fit a histogram on an empty dataset");
    }
  } else {
    if (options.bounds.dim() != dim) {
      return Status::InvalidArgument("bounds dimensionality mismatch");
    }
    hd.bounds_ = options.bounds;
  }

  hd.cell_width_.resize(dim);
  hd.cell_volume_ = 1.0;
  for (int j = 0; j < dim; ++j) {
    double ext = hd.bounds_.extent(j);
    hd.cell_width_[j] = ext > 0 ? ext / hd.cells_per_dim_ : 1.0;
    hd.cell_volume_ *= hd.cell_width_[j];
  }
  hd.counts_.assign(static_cast<size_t>(logical), 0);

  scan.Reset();
  data::ScanBatch batch;
  int64_t n = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      ++hd.counts_[static_cast<size_t>(hd.LinearCell(batch.point(i, dim)))];
      ++n;
    }
  }
  if (n == 0) {
    return Status::InvalidArgument(
        "cannot fit a histogram on an empty dataset");
  }
  hd.n_ = n;
  return hd;
}

Result<HistogramDensity> HistogramDensity::Fit(
    const data::PointSet& points, const HistogramDensityOptions& options) {
  data::InMemoryScan scan(&points);
  return Fit(scan, options);
}

int64_t HistogramDensity::LinearCell(data::PointView p) const {
  DBS_DCHECK(p.dim() == dim_);
  int64_t linear = 0;
  for (int j = 0; j < dim_; ++j) {
    int64_t c = static_cast<int64_t>(
        std::floor((p[j] - bounds_.lo(j)) / cell_width_[j]));
    c = std::clamp<int64_t>(c, 0, cells_per_dim_ - 1);
    linear = linear * cells_per_dim_ + c;
  }
  return linear;
}

int64_t HistogramDensity::CellCount(data::PointView p) const {
  return counts_[static_cast<size_t>(LinearCell(p))];
}

double HistogramDensity::Evaluate(data::PointView p) const {
  return static_cast<double>(CellCount(p)) / cell_volume_;
}

double HistogramDensity::EvaluateExcluding(data::PointView x,
                                           data::PointView self) const {
  int64_t count = CellCount(x);
  if (LinearCell(x) == LinearCell(self) && count > 0) --count;
  return static_cast<double>(count) / cell_volume_;
}

void HistogramDensity::BatchRange(const double* rows, const double* selves,
                                  int64_t begin, int64_t end,
                                  double* out) const {
  const int d = dim_;
  const int64_t n = end - begin;
  // Sort the range's points by (exact) linear cell id; per-point results
  // are order-independent, so regrouping is invisible in the output.
  std::vector<std::pair<int64_t, int64_t>> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    order[static_cast<size_t>(i)] = {
        LinearCell(data::PointView(rows + (begin + i) * d, d)), i};
  }
  std::sort(order.begin(), order.end());
  int64_t g = 0;
  while (g < n) {
    const int64_t cell = order[static_cast<size_t>(g)].first;
    int64_t h = g + 1;
    while (h < n && order[static_cast<size_t>(h)].first == cell) ++h;
    // One lookup and one division per group — the same operands the scalar
    // path divides per point, so the same double comes out.
    const int64_t count = counts_[static_cast<size_t>(cell)];
    const double value = static_cast<double>(count) / cell_volume_;
    const double excl_value =
        static_cast<double>(count > 0 ? count - 1 : count) / cell_volume_;
    for (int64_t k = g; k < h; ++k) {
      const int64_t i = order[static_cast<size_t>(k)].second;
      double v = value;
      if (selves != nullptr &&
          LinearCell(data::PointView(selves + (begin + i) * d, d)) == cell) {
        v = excl_value;
      }
      out[begin + i] = v;
    }
    g = h;
  }
}

Status HistogramDensity::EvaluateBatch(
    const double* rows, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/nullptr, count, out,
                                      executor);
}

Status HistogramDensity::EvaluateExcludingBatch(
    const double* rows, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/rows, count, out,
                                      executor);
}

Status HistogramDensity::EvaluateExcludingSelvesBatch(
    const double* rows, const double* selves, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  auto shard = [&](int64_t begin, int64_t end) {
    BatchRange(rows, selves, begin, end, out);
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

}  // namespace dbs::density
