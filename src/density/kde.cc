#include "density/kde.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace dbs::density {
namespace {

// Grid cells are hashed, not stored exactly; colliding cells share a bucket.
// That is safe because evaluation always computes the exact kernel value
// (zero outside the support), and neighbor-bucket keys are deduplicated
// before iteration so no center can be accumulated twice.
uint64_t HashCell(const int64_t* cell, int dim) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int j = 0; j < dim; ++j) {
    uint64_t v = static_cast<uint64_t>(cell[j]);
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 31;
    h = (h ^ v) * 0x94d049bb133111ebULL;
  }
  return h ^ (h >> 29);
}

// Above this dimensionality the 3^d neighbor enumeration stops paying for
// itself; evaluation falls back to the brute-force sum.
constexpr int kMaxIndexDim = 6;

}  // namespace

Result<Kde> Kde::Fit(data::DataScan& scan, const KdeOptions& options) {
  if (options.num_kernels <= 0) {
    return Status::InvalidArgument("num_kernels must be positive");
  }
  if (options.bandwidth_rule == BandwidthRule::kFixed &&
      options.fixed_bandwidth <= 0) {
    return Status::InvalidArgument(
        "fixed bandwidth rule requires fixed_bandwidth > 0");
  }
  if (options.bandwidth_scale <= 0) {
    return Status::InvalidArgument("bandwidth_scale must be positive");
  }
  const int dim = scan.dim();
  if (dim <= 0) {
    return Status::InvalidArgument("scan must have positive dimensionality");
  }

  Kde kde;
  kde.kernel_ = options.kernel;
  kde.centers_ = data::PointSet(dim);
  kde.bounds_ = data::BoundingBox(dim);
  std::vector<OnlineMoments> moments(dim);
  Rng rng(options.seed);

  // Single pass: reservoir-sample centers (Vitter's Algorithm R), accumulate
  // moments and bounds.
  const int64_t m_target = options.num_kernels;
  scan.Reset();
  data::ScanBatch batch;
  int64_t seen = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      data::PointView p = batch.point(i, dim);
      kde.bounds_.Extend(p);
      for (int j = 0; j < dim; ++j) moments[j].Add(p[j]);
      if (seen < m_target) {
        kde.centers_.Append(p);
      } else {
        int64_t slot = static_cast<int64_t>(rng.NextBounded(
            static_cast<uint64_t>(seen + 1)));
        if (slot < m_target) {
          data::PointView src = p;
          double* dst = kde.centers_.MutableRow(slot);
          for (int j = 0; j < dim; ++j) dst[j] = src[j];
        }
      }
      ++seen;
    }
  }
  if (seen == 0) {
    return Status::InvalidArgument("cannot fit a KDE on an empty dataset");
  }
  kde.n_ = seen;

  std::vector<double> sigma(dim);
  for (int j = 0; j < dim; ++j) sigma[j] = moments[j].sample_stddev();
  kde.bandwidths_ =
      ComputeBandwidths(options.bandwidth_rule, options.kernel, sigma,
                        kde.centers_.size(), options.fixed_bandwidth);
  for (double& h : kde.bandwidths_) h *= options.bandwidth_scale;
  kde.inv_bandwidths_.resize(dim);
  double inv_h_prod = 1.0;
  for (int j = 0; j < dim; ++j) {
    kde.inv_bandwidths_[j] = 1.0 / kde.bandwidths_[j];
    inv_h_prod *= kde.inv_bandwidths_[j];
  }
  kde.norm_factor_ = static_cast<double>(kde.n_) /
                     static_cast<double>(kde.centers_.size()) * inv_h_prod;
  kde.support_radius_ = KernelSupportRadius(options.kernel);

  if (options.use_grid_index && dim <= kMaxIndexDim) {
    kde.BuildIndex();
  }
  return kde;
}

Result<Kde> Kde::Fit(const data::PointSet& points, const KdeOptions& options) {
  data::InMemoryScan scan(&points);
  return Fit(scan, options);
}

void Kde::BuildIndex() {
  const int dim = centers_.dim();
  cell_extent_.resize(dim);
  for (int j = 0; j < dim; ++j) {
    cell_extent_[j] = support_radius_ * bandwidths_[j];
  }
  std::vector<int64_t> cell(dim);
  for (int64_t i = 0; i < centers_.size(); ++i) {
    data::PointView c = centers_[i];
    for (int j = 0; j < dim; ++j) {
      cell[j] = static_cast<int64_t>(std::floor(c[j] / cell_extent_[j]));
    }
    grid_[HashCell(cell.data(), dim)].push_back(static_cast<int32_t>(i));
  }
  indexed_ = true;
}

namespace {

// True when the center's coordinates equal `exclude` exactly (centers are
// verbatim copies of data rows, so bitwise comparison identifies them).
inline bool MatchesExclude(const double* c, data::PointView exclude, int d) {
  if (exclude.data() == nullptr) return false;
  for (int j = 0; j < d; ++j) {
    if (c[j] != exclude[j]) return false;
  }
  return true;
}

}  // namespace

double Kde::SumBrute(data::PointView p, data::PointView exclude) const {
  DBS_DCHECK(p.dim() == dim());
  const int d = dim();
  double sum = 0.0;
  for (int64_t i = 0; i < centers_.size(); ++i) {
    const double* c = centers_[i].data();
    double prod = 1.0;
    for (int j = 0; j < d; ++j) {
      double u = (p[j] - c[j]) * inv_bandwidths_[j];
      double k = KernelValue(kernel_, u);
      if (k == 0.0) {
        prod = 0.0;
        break;
      }
      prod *= k;
    }
    if (prod != 0.0 && MatchesExclude(c, exclude, d)) continue;
    sum += prod;
  }
  return sum;
}

double Kde::EvaluateBrute(data::PointView p) const {
  return norm_factor_ * SumBrute(p, data::PointView());
}

double Kde::SumIndexed(data::PointView p, data::PointView exclude) const {
  DBS_DCHECK(p.dim() == dim());
  const int d = dim();
  int64_t base[kMaxIndexDim];
  for (int j = 0; j < d; ++j) {
    base[j] = static_cast<int64_t>(std::floor(p[j] / cell_extent_[j]));
  }
  // Enumerate the 3^d neighbor cells and collect their (deduplicated) keys.
  int64_t cell[kMaxIndexDim];
  int offsets[kMaxIndexDim];
  std::fill(offsets, offsets + d, -1);
  uint64_t keys[729];  // 3^6
  int num_keys = 0;
  while (true) {
    for (int j = 0; j < d; ++j) cell[j] = base[j] + offsets[j];
    keys[num_keys++] = HashCell(cell, d);
    int j = 0;
    for (; j < d; ++j) {
      if (++offsets[j] <= 1) break;
      offsets[j] = -1;
    }
    if (j == d) break;
  }
  std::sort(keys, keys + num_keys);
  num_keys = static_cast<int>(std::unique(keys, keys + num_keys) - keys);

  double sum = 0.0;
  for (int ki = 0; ki < num_keys; ++ki) {
    auto it = grid_.find(keys[ki]);
    if (it == grid_.end()) continue;
    for (int32_t idx : it->second) {
      const double* c = centers_[idx].data();
      double prod = 1.0;
      for (int j = 0; j < d; ++j) {
        double u = (p[j] - c[j]) * inv_bandwidths_[j];
        double k = KernelValue(kernel_, u);
        if (k == 0.0) {
          prod = 0.0;
          break;
        }
        prod *= k;
      }
      if (prod != 0.0 && MatchesExclude(c, exclude, d)) continue;
      sum += prod;
    }
  }
  return sum;
}

double Kde::Evaluate(data::PointView p) const {
  if (!indexed_) return EvaluateBrute(p);
  return norm_factor_ * SumIndexed(p, data::PointView());
}

double Kde::EvaluateExcluding(data::PointView x, data::PointView self) const {
  double sum = indexed_ ? SumIndexed(x, self) : SumBrute(x, self);
  return norm_factor_ * sum;
}

double Kde::MeanDensityPow(double a) const {
  double sum = 0.0;
  for (int64_t i = 0; i < centers_.size(); ++i) {
    double f = Evaluate(centers_[i]);
    if (f > 0) sum += std::pow(f, a);
  }
  return sum / static_cast<double>(centers_.size());
}

double Kde::AverageDensity() const {
  double volume = bounds_.Volume();
  if (volume <= 0) return 0.0;
  return static_cast<double>(n_) / volume;
}

Kde::State Kde::ExportState() const {
  State state;
  state.n = n_;
  state.kernel = kernel_;
  state.centers = centers_;
  state.bandwidths = bandwidths_;
  state.bounds = bounds_;
  return state;
}

Result<Kde> Kde::FromState(State state, bool rebuild_index) {
  if (state.n <= 0) {
    return Status::InvalidArgument("state has non-positive point count");
  }
  if (state.centers.empty()) {
    return Status::InvalidArgument("state has no kernel centers");
  }
  const int dim = state.centers.dim();
  if (static_cast<int>(state.bandwidths.size()) != dim) {
    return Status::InvalidArgument("bandwidth count does not match dim");
  }
  for (double h : state.bandwidths) {
    if (!(h > 0)) {
      return Status::InvalidArgument("bandwidths must be positive");
    }
  }
  if (state.bounds.dim() != dim) {
    return Status::InvalidArgument("bounds dim does not match centers");
  }
  Kde kde;
  kde.n_ = state.n;
  kde.kernel_ = state.kernel;
  kde.centers_ = std::move(state.centers);
  kde.bandwidths_ = std::move(state.bandwidths);
  kde.bounds_ = std::move(state.bounds);
  kde.inv_bandwidths_.resize(dim);
  double inv_h_prod = 1.0;
  for (int j = 0; j < dim; ++j) {
    kde.inv_bandwidths_[j] = 1.0 / kde.bandwidths_[j];
    inv_h_prod *= kde.inv_bandwidths_[j];
  }
  kde.norm_factor_ = static_cast<double>(kde.n_) /
                     static_cast<double>(kde.centers_.size()) * inv_h_prod;
  kde.support_radius_ = KernelSupportRadius(kde.kernel_);
  if (rebuild_index && dim <= kMaxIndexDim) {
    kde.BuildIndex();
  }
  return kde;
}

}  // namespace dbs::density
