#include "density/kde.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "density/kde_partial.h"
#include "density/kernel_block.h"

namespace dbs::density {
namespace {

// Grid cells are hashed, not stored exactly; colliding cells share a bucket.
// That is safe because evaluation always computes the exact kernel value
// (zero outside the support), and neighbor-bucket keys are deduplicated
// before iteration so no center can be accumulated twice.
uint64_t HashCell(const int64_t* cell, int dim) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int j = 0; j < dim; ++j) {
    uint64_t v = static_cast<uint64_t>(cell[j]);
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 31;
    h = (h ^ v) * 0x94d049bb133111ebULL;
  }
  return h ^ (h >> 29);
}

// Above this dimensionality the 3^d neighbor enumeration stops paying for
// itself; evaluation falls back to the brute-force sum.
constexpr int kMaxIndexDim = 6;

}  // namespace

Result<Kde> Kde::Fit(data::DataScan& scan, const KdeOptions& options) {
  // A fit is a single-shard sharded build: FitPartial runs the historical
  // one-pass reservoir/moments loop (shard 0 consumes the legacy RNG
  // stream), FinalizeKde the historical bandwidth tail — so the sharded
  // pipeline's shards=1 path is this function, bitwise.
  ShardInfo info;
  info.total_rows = scan.size();
  DBS_ASSIGN_OR_RETURN(PartialKde partial, FitPartial(scan, options, info));
  return FinalizeKde(std::move(partial), options);
}

Result<Kde> Kde::Fit(const data::PointSet& points, const KdeOptions& options) {
  data::InMemoryScan scan(&points);
  return Fit(scan, options);
}

void Kde::BuildSoA() {
  const int dim = centers_.dim();
  const int64_t m = centers_.size();
  centers_soa_.resize(static_cast<size_t>(dim) * m);
  const double* rows = centers_.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int j = 0; j < dim; ++j) {
      centers_soa_[static_cast<size_t>(j) * m + i] = rows[i * dim + j];
    }
  }
}

void Kde::BuildIndex() {
  const int dim = centers_.dim();
  const int64_t m = centers_.size();
  cell_extent_.resize(dim);
  for (int j = 0; j < dim; ++j) {
    cell_extent_[j] = support_radius_ * bandwidths_[j];
  }

  // Bucket the centers: (cell key, center) pairs, stably sorted by key so
  // each bucket keeps its centers in index order — the same order the
  // per-bucket vectors of the former unordered_map had, which is the
  // summation order the bitwise-reproducibility contract pins down.
  std::vector<std::pair<uint64_t, int32_t>> entries(
      static_cast<size_t>(m));
  std::vector<int64_t> cell(dim);
  for (int64_t i = 0; i < m; ++i) {
    data::PointView c = centers_[i];
    for (int j = 0; j < dim; ++j) {
      cell[j] = static_cast<int64_t>(std::floor(c[j] / cell_extent_[j]));
    }
    entries[static_cast<size_t>(i)] = {HashCell(cell.data(), dim),
                                       static_cast<int32_t>(i)};
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const std::pair<uint64_t, int32_t>& a,
                      const std::pair<uint64_t, int32_t>& b) {
                     return a.first < b.first;
                   });

  int64_t distinct = 0;
  for (int64_t i = 0; i < m; ++i) {
    if (i == 0 || entries[i].first != entries[i - 1].first) ++distinct;
  }
  // Open-addressed table at <= 50% load; linear probing stays short.
  uint64_t table = 1;
  while (table < static_cast<uint64_t>(2 * distinct)) table <<= 1;
  slot_mask_ = table - 1;
  slot_keys_.assign(table, 0);
  slot_begin_.assign(table, -1);
  slot_end_.assign(table, 0);
  cell_centers_.resize(static_cast<size_t>(m));
  int64_t pos = 0;
  while (pos < m) {
    const uint64_t key = entries[pos].first;
    int64_t run = pos;
    while (run < m && entries[run].first == key) {
      cell_centers_[static_cast<size_t>(run)] = entries[run].second;
      ++run;
    }
    uint64_t s = key & slot_mask_;
    while (slot_begin_[s] >= 0) s = (s + 1) & slot_mask_;
    slot_keys_[s] = key;
    slot_begin_[s] = static_cast<int32_t>(pos);
    slot_end_[s] = static_cast<int32_t>(run);
    pos = run;
  }

#ifndef NDEBUG
  // Contract behind the bitwise-reproducibility guarantee: each bucket's
  // centers must stay in ascending index (= insertion) order — that is the
  // summation order the scalar and batch paths both follow. The stable sort
  // above guarantees it; this re-checks after any future rewrite.
  for (uint64_t s = 0; s <= slot_mask_; ++s) {
    if (slot_begin_[s] < 0) continue;
    DBS_ASSERT(slot_begin_[s] < slot_end_[s] &&
                   slot_end_[s] <= static_cast<int32_t>(m),
               "bucket range must be non-empty and within the center table");
    for (int32_t t = slot_begin_[s] + 1; t < slot_end_[s]; ++t) {
      DBS_ASSERT(cell_centers_[static_cast<size_t>(t - 1)] <
                     cell_centers_[static_cast<size_t>(t)],
                 "bucket centers left insertion order; the summation order "
                 "contract is broken");
    }
  }
#endif

  // The {-1,0,1}^d neighbor-offset pattern, first dimension fastest —
  // computed once here instead of re-run per evaluation.
  num_neighbor_cells_ = 1;
  for (int j = 0; j < dim; ++j) num_neighbor_cells_ *= 3;
  neighbor_offsets_.resize(static_cast<size_t>(num_neighbor_cells_) * dim);
  int offsets[kMaxIndexDim];
  std::fill(offsets, offsets + dim, -1);
  for (int c = 0; c < num_neighbor_cells_; ++c) {
    for (int j = 0; j < dim; ++j) {
      neighbor_offsets_[static_cast<size_t>(c) * dim + j] = offsets[j];
    }
    for (int j = 0; j < dim; ++j) {
      if (++offsets[j] <= 1) break;
      offsets[j] = -1;
    }
  }
  indexed_ = true;
}

bool Kde::FindBucket(uint64_t key, int32_t* begin, int32_t* end) const {
  uint64_t s = key & slot_mask_;
  while (slot_begin_[s] >= 0) {
    if (slot_keys_[s] == key) {
      *begin = slot_begin_[s];
      *end = slot_end_[s];
      return true;
    }
    s = (s + 1) & slot_mask_;
  }
  return false;
}

namespace {

// True when the center's coordinates equal `exclude` exactly (centers are
// verbatim copies of data rows, so bitwise comparison identifies them).
inline bool MatchesExclude(const double* c, data::PointView exclude, int d) {
  if (exclude.data() == nullptr) return false;
  for (int j = 0; j < d; ++j) {
    if (c[j] != exclude[j]) return false;
  }
  return true;
}

// Collects the deduplicated neighbor-bucket keys of `base` in ascending
// order — the canonical bucket-visit order. Returns the key count.
inline int NeighborKeys(const int64_t* base, const int64_t* offsets,
                        int num_cells, int d, uint64_t* keys) {
  int64_t cell[kMaxIndexDim];
  for (int c = 0; c < num_cells; ++c) {
    const int64_t* off = offsets + static_cast<size_t>(c) * d;
    for (int j = 0; j < d; ++j) cell[j] = base[j] + off[j];
    keys[c] = HashCell(cell, d);
  }
  std::sort(keys, keys + num_cells);
  return static_cast<int>(std::unique(keys, keys + num_cells) - keys);
}

}  // namespace

double Kde::SumBrute(data::PointView p, data::PointView exclude) const {
  DBS_DCHECK(p.dim() == dim());
  const int d = dim();
  double sum = 0.0;
  for (int64_t i = 0; i < centers_.size(); ++i) {
    const double* c = centers_[i].data();
    double prod = 1.0;
    for (int j = 0; j < d; ++j) {
      double u = (p[j] - c[j]) * inv_bandwidths_[j];
      double k = KernelValue(kernel_, u);
      if (k == 0.0) {
        prod = 0.0;
        break;
      }
      prod *= k;
    }
    if (prod != 0.0 && MatchesExclude(c, exclude, d)) continue;
    sum += prod;
  }
  return sum;
}

double Kde::EvaluateBrute(data::PointView p) const {
  return norm_factor_ * SumBrute(p, data::PointView());
}

double Kde::SumIndexed(data::PointView p, data::PointView exclude) const {
  DBS_DCHECK(p.dim() == dim());
  const int d = dim();
  int64_t base[kMaxIndexDim];
  for (int j = 0; j < d; ++j) {
    base[j] = static_cast<int64_t>(std::floor(p[j] / cell_extent_[j]));
  }
  uint64_t keys[729];  // 3^6
  const int num_keys = NeighborKeys(base, neighbor_offsets_.data(),
                                    num_neighbor_cells_, d, keys);

  double sum = 0.0;
  for (int ki = 0; ki < num_keys; ++ki) {
    int32_t bucket_begin = 0;
    int32_t bucket_end = 0;
    if (!FindBucket(keys[ki], &bucket_begin, &bucket_end)) continue;
    for (int32_t t = bucket_begin; t < bucket_end; ++t) {
      const double* c = centers_[cell_centers_[t]].data();
      double prod = 1.0;
      for (int j = 0; j < d; ++j) {
        double u = (p[j] - c[j]) * inv_bandwidths_[j];
        double k = KernelValue(kernel_, u);
        if (k == 0.0) {
          prod = 0.0;
          break;
        }
        prod *= k;
      }
      if (prod != 0.0 && MatchesExclude(c, exclude, d)) continue;
      sum += prod;
    }
  }
  return sum;
}

double Kde::Evaluate(data::PointView p) const {
  if (!indexed_) return EvaluateBrute(p);
  return norm_factor_ * SumIndexed(p, data::PointView());
}

double Kde::EvaluateExcluding(data::PointView x, data::PointView self) const {
  double sum = indexed_ ? SumIndexed(x, self) : SumBrute(x, self);
  return norm_factor_ * sum;
}

// ---------------------------------------------------------------------------
// Batch evaluation.
//
// The bitwise contract with the scalar path holds because nothing about the
// per-point arithmetic changes: each point is summed against the centers of
// its deduplicated neighbor buckets in ascending-key order (center-index
// order within a bucket), products are taken in dimension order, and the
// accumulator is a single double added in visit order. The batch path only
// changes WHEN work happens: the neighbor enumeration and gather are done
// once per cell group instead of once per point, the gathered tile is laid
// out SoA so the kernel loop streams contiguous memory, and a zero kernel
// factor multiplies through to +0.0 instead of branching out early (adding
// +0.0 to a non-negative sum cannot change its bits).

struct Kde::TileScratch {
  std::vector<int32_t> idx;  // gathered center indices, visit order
  std::vector<double> soa;   // dim arrays of length idx.size()
};

int64_t Kde::GatherTile(const int64_t* base_cell, TileScratch* scratch)
    const {
  const int d = dim();
  uint64_t keys[729];
  const int num_keys = NeighborKeys(base_cell, neighbor_offsets_.data(),
                                    num_neighbor_cells_, d, keys);
  scratch->idx.clear();
  for (int ki = 0; ki < num_keys; ++ki) {
    int32_t bucket_begin = 0;
    int32_t bucket_end = 0;
    if (!FindBucket(keys[ki], &bucket_begin, &bucket_end)) continue;
    scratch->idx.insert(scratch->idx.end(),
                        cell_centers_.begin() + bucket_begin,
                        cell_centers_.begin() + bucket_end);
  }
  const int64_t tile = static_cast<int64_t>(scratch->idx.size());
  scratch->soa.resize(static_cast<size_t>(d) * tile);
  const int64_t m = centers_.size();
  for (int j = 0; j < d; ++j) {
    double* col = scratch->soa.data() + static_cast<size_t>(j) * tile;
    const double* src = centers_soa_.data() + static_cast<size_t>(j) * m;
    for (int64_t t = 0; t < tile; ++t) col[t] = src[scratch->idx[t]];
  }
  return tile;
}

double Kde::SumTile(const double* p, const double* soa, int64_t tile,
                    const double* exclude) const {
  // The arithmetic lives in density/kernel_block.h so the dual-tree
  // evaluator provably shares the frozen per-pair order (DESIGN.md §15).
  return SumKernelProductTile(kernel_, dim(), p, inv_bandwidths_.data(), soa,
                              tile, exclude);
}

void Kde::BatchRangeIndexed(const double* rows, const double* selves,
                            int64_t begin, int64_t end, double* out) const {
  const int d = dim();
  const int64_t n = end - begin;
  // Sort the range's points into grid cells so each cell group pays for its
  // neighborhood gather once. Per-point results are order-independent, so
  // regrouping is invisible in the output.
  std::vector<int64_t> cells(static_cast<size_t>(n) * d);
  for (int64_t i = 0; i < n; ++i) {
    const double* p = rows + (begin + i) * d;
    for (int j = 0; j < d; ++j) {
      cells[static_cast<size_t>(i) * d + j] =
          static_cast<int64_t>(std::floor(p[j] / cell_extent_[j]));
    }
  }
  // Sort key: the cell hash, with the exact coordinates as a tiebreak so
  // hash-colliding cells still land in distinct groups. The hash compare
  // settles almost every comparison with one load instead of a d-loop.
  std::vector<uint64_t> hashes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    hashes[static_cast<size_t>(i)] =
        HashCell(cells.data() + static_cast<size_t>(i) * d, d);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const uint64_t ha = hashes[static_cast<size_t>(a)];
    const uint64_t hb = hashes[static_cast<size_t>(b)];
    if (ha != hb) return ha < hb;
    const int64_t* ca = cells.data() + static_cast<size_t>(a) * d;
    const int64_t* cb = cells.data() + static_cast<size_t>(b) * d;
    for (int j = 0; j < d; ++j) {
      if (ca[j] != cb[j]) return ca[j] < cb[j];
    }
    return false;
  });

  TileScratch scratch;
  int64_t g = 0;
  while (g < n) {
    const int64_t* base = cells.data() + static_cast<size_t>(order[g]) * d;
    int64_t h = g + 1;
    while (h < n) {
      const int64_t* c = cells.data() + static_cast<size_t>(order[h]) * d;
      bool same = true;
      for (int j = 0; j < d; ++j) {
        if (c[j] != base[j]) {
          same = false;
          break;
        }
      }
      if (!same) break;
      ++h;
    }
    const int64_t tile = GatherTile(base, &scratch);
    for (int64_t k = g; k < h; ++k) {
      const int64_t i = order[k];
      const double* p = rows + (begin + i) * d;
      const double sum = SumTile(
          p, scratch.soa.data(), tile,
          selves != nullptr ? selves + (begin + i) * d : nullptr);
      out[begin + i] = norm_factor_ * sum;
    }
    g = h;
  }
}

void Kde::BatchRangeBrute(const double* rows, const double* selves,
                          int64_t begin, int64_t end, double* out) const {
  const int d = dim();
  const int64_t m = centers_.size();
  for (int64_t i = begin; i < end; ++i) {
    const double* p = rows + i * d;
    const double sum =
        SumTile(p, centers_soa_.data(), m,
                selves != nullptr ? selves + i * d : nullptr);
    out[i] = norm_factor_ * sum;
  }
}

Status Kde::EvaluateBatch(const double* rows, int64_t count, double* out,
                          parallel::BatchExecutor* executor) const {
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/nullptr, count, out,
                                      executor);
}

Status Kde::EvaluateExcludingBatch(const double* rows, int64_t count,
                                   double* out,
                                   parallel::BatchExecutor* executor) const {
  // Leave-one-out: every row excludes itself.
  return EvaluateExcludingSelvesBatch(rows, /*selves=*/rows, count, out,
                                      executor);
}

Status Kde::EvaluateExcludingSelvesBatch(
    const double* rows, const double* selves, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  auto shard = [&](int64_t begin, int64_t end) {
    if (indexed_) {
      BatchRangeIndexed(rows, selves, begin, end, out);
    } else {
      BatchRangeBrute(rows, selves, begin, end, out);
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

double Kde::MeanDensityPow(double a, parallel::BatchExecutor* executor)
    const {
  const int64_t m = centers_.size();
  std::vector<double> f(static_cast<size_t>(m));
  Status batched =
      EvaluateBatch(centers_.flat().data(), m, f.data(), executor);
  if (!batched.ok()) {
    // Executor backpressure: fall back to the sequential batch path, which
    // cannot fail and produces the identical values.
    (void)EvaluateBatch(centers_.flat().data(), m, f.data(), nullptr);
  }
  double sum = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    if (f[static_cast<size_t>(i)] > 0) {
      sum += std::pow(f[static_cast<size_t>(i)], a);
    }
  }
  return sum / static_cast<double>(m);
}

double Kde::AverageDensity() const {
  double volume = bounds_.Volume();
  if (volume <= 0) return 0.0;
  return static_cast<double>(n_) / volume;
}

Kde::State Kde::ExportState() const {
  State state;
  state.n = n_;
  state.kernel = kernel_;
  state.centers = centers_;
  state.bandwidths = bandwidths_;
  state.bounds = bounds_;
  return state;
}

Result<Kde> Kde::FromState(State state, bool rebuild_index) {
  if (state.n <= 0) {
    return Status::InvalidArgument("state has non-positive point count");
  }
  if (state.centers.empty()) {
    return Status::InvalidArgument("state has no kernel centers");
  }
  const int dim = state.centers.dim();
  if (static_cast<int>(state.bandwidths.size()) != dim) {
    return Status::InvalidArgument("bandwidth count does not match dim");
  }
  for (double h : state.bandwidths) {
    if (!(h > 0)) {
      return Status::InvalidArgument("bandwidths must be positive");
    }
  }
  if (state.bounds.dim() != dim) {
    return Status::InvalidArgument("bounds dim does not match centers");
  }
  Kde kde;
  kde.n_ = state.n;
  kde.kernel_ = state.kernel;
  kde.centers_ = std::move(state.centers);
  kde.bandwidths_ = std::move(state.bandwidths);
  kde.bounds_ = std::move(state.bounds);
  kde.inv_bandwidths_.resize(dim);
  double inv_h_prod = 1.0;
  for (int j = 0; j < dim; ++j) {
    kde.inv_bandwidths_[j] = 1.0 / kde.bandwidths_[j];
    inv_h_prod *= kde.inv_bandwidths_[j];
  }
  kde.norm_factor_ = static_cast<double>(kde.n_) /
                     static_cast<double>(kde.centers_.size()) * inv_h_prod;
  kde.support_radius_ = KernelSupportRadius(kde.kernel_);
  kde.BuildSoA();
  if (rebuild_index && dim <= kMaxIndexDim) {
    kde.BuildIndex();
  }
  return kde;
}

}  // namespace dbs::density
