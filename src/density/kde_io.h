// Serialization of fitted KDE models (.dbsk files).
//
// Fitting reads the whole dataset; the model itself is tiny (m centers +
// d bandwidths). Persisting it lets one expensive pass serve many later
// analyses — sampling runs with different exponents, outlier scoring with
// different (p, k), exploration from a notebook — without re-reading the
// data. Layout: fixed header (magic, version, kernel type, dims, counts,
// scalar parameters), then bandwidths, bounds and centers as float64.

#ifndef DBS_DENSITY_KDE_IO_H_
#define DBS_DENSITY_KDE_IO_H_

#include <string>

#include "density/kde.h"
#include "util/status.h"

namespace dbs::density {

inline constexpr uint32_t kKdeMagic = 0x4b534244;  // "DBSK" little-endian
inline constexpr uint32_t kKdeVersion = 1;

// Writes the fitted model to `path` (overwrites).
[[nodiscard]] Status SaveKde(const Kde& kde, const std::string& path);

// Loads a model saved by SaveKde. `rebuild_index` controls whether the
// compact-support grid index is rebuilt (identical results either way).
[[nodiscard]] Result<Kde> LoadKde(const std::string& path, bool rebuild_index = true);

}  // namespace dbs::density

#endif  // DBS_DENSITY_KDE_IO_H_
