#include "density/kernel.h"

#include <cmath>

namespace dbs::density {

double KernelValue(KernelType type, double u) {
  switch (type) {
    case KernelType::kEpanechnikov: {
      double a = 1.0 - u * u;
      return a > 0 ? 0.75 * a : 0.0;
    }
    case KernelType::kQuartic: {
      double a = 1.0 - u * u;
      return a > 0 ? 0.9375 * a * a : 0.0;
    }
    case KernelType::kTriangular: {
      double a = 1.0 - std::abs(u);
      return a > 0 ? a : 0.0;
    }
    case KernelType::kUniform:
      return std::abs(u) <= 1.0 ? 0.5 : 0.0;
    case KernelType::kGaussian:
      if (std::abs(u) > 4.0) return 0.0;
      return 0.3989422804014327 * std::exp(-0.5 * u * u);
  }
  return 0.0;
}

double KernelSupportRadius(KernelType type) {
  switch (type) {
    case KernelType::kEpanechnikov:
    case KernelType::kQuartic:
    case KernelType::kTriangular:
    case KernelType::kUniform:
      return 1.0;
    case KernelType::kGaussian:
      return 4.0;
  }
  return 1.0;
}

double KernelCanonicalBandwidth(KernelType type) {
  // Values from Scott (1992) / Silverman (1986): the bandwidth that makes a
  // kernel equivalent to the normal-reference rule h = sigma * n^(-1/(d+4)).
  switch (type) {
    case KernelType::kEpanechnikov:
      return 2.2360679774997896;  // sqrt(5)
    case KernelType::kQuartic:
      return 2.6451905283833983;  // sqrt(7)
    case KernelType::kTriangular:
      return 2.4494897427831779;  // sqrt(6)
    case KernelType::kUniform:
      return 1.7320508075688772;  // sqrt(3)
    case KernelType::kGaussian:
      return 1.0;
  }
  return 1.0;
}

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kQuartic:
      return "quartic";
    case KernelType::kTriangular:
      return "triangular";
    case KernelType::kUniform:
      return "uniform";
    case KernelType::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

}  // namespace dbs::density
