#include "density/kde_io.h"

#include <cstdio>
#include <vector>

namespace dbs::density {
namespace {

struct KdeHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t kernel;
  uint32_t dim;
  int64_t n;
  int64_t num_centers;
};
static_assert(sizeof(KdeHeader) == 32, "header must be 32 bytes");

bool WriteDoubles(std::FILE* f, const double* data, size_t count) {
  return count == 0 ||
         std::fwrite(data, sizeof(double), count, f) == count;
}

bool ReadDoubles(std::FILE* f, double* data, size_t count) {
  return count == 0 || std::fread(data, sizeof(double), count, f) == count;
}

}  // namespace

[[nodiscard]] Status SaveKde(const Kde& kde, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  Kde::State state = kde.ExportState();
  const int dim = state.centers.dim();
  KdeHeader header{};
  header.magic = kKdeMagic;
  header.version = kKdeVersion;
  header.kernel = static_cast<uint32_t>(state.kernel);
  header.dim = static_cast<uint32_t>(dim);
  header.n = state.n;
  header.num_centers = state.centers.size();

  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  ok = ok && WriteDoubles(f, state.bandwidths.data(),
                          state.bandwidths.size());
  ok = ok && WriteDoubles(f, state.bounds.lo().data(),
                          state.bounds.lo().size());
  ok = ok && WriteDoubles(f, state.bounds.hi().data(),
                          state.bounds.hi().size());
  ok = ok && WriteDoubles(f, state.centers.flat().data(),
                          state.centers.flat().size());
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::Ok();
}

[[nodiscard]] Result<Kde> LoadKde(const std::string& path, bool rebuild_index) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  KdeHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("truncated header: " + path);
  }
  if (header.magic != kKdeMagic) {
    std::fclose(f);
    return Status::InvalidArgument("not a .dbsk model file: " + path);
  }
  if (header.version != kKdeVersion) {
    std::fclose(f);
    return Status::InvalidArgument("unsupported .dbsk version");
  }
  if (header.dim == 0 || header.dim > 1024 || header.num_centers <= 0 ||
      header.n <= 0 ||
      header.kernel > static_cast<uint32_t>(KernelType::kGaussian)) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt .dbsk header");
  }
  // Validate the promised payload against the actual file size before any
  // allocation sized from header fields.
  std::fseek(f, 0, SEEK_END);
  long actual_bytes = std::ftell(f);
  std::fseek(f, sizeof(KdeHeader), SEEK_SET);
  double expected_bytes =
      static_cast<double>(sizeof(KdeHeader)) +
      (3.0 * header.dim +
       static_cast<double>(header.num_centers) * header.dim) *
          sizeof(double);
  if (actual_bytes < 0 ||
      static_cast<double>(actual_bytes) < expected_bytes) {
    std::fclose(f);
    return Status::IoError("model file is shorter than its header claims: " +
                           path);
  }
  const int dim = static_cast<int>(header.dim);

  Kde::State state;
  state.n = header.n;
  state.kernel = static_cast<KernelType>(header.kernel);
  state.bandwidths.resize(dim);
  std::vector<double> lo(dim);
  std::vector<double> hi(dim);
  std::vector<double> centers(static_cast<size_t>(header.num_centers) * dim);
  bool ok = ReadDoubles(f, state.bandwidths.data(), dim);
  ok = ok && ReadDoubles(f, lo.data(), dim);
  ok = ok && ReadDoubles(f, hi.data(), dim);
  ok = ok && ReadDoubles(f, centers.data(), centers.size());
  std::fclose(f);
  if (!ok) return Status::IoError("truncated model file: " + path);

  for (int j = 0; j < dim; ++j) {
    if (!(lo[j] <= hi[j])) {
      return Status::InvalidArgument("corrupt bounds in model file");
    }
  }
  state.bounds = data::BoundingBox(std::move(lo), std::move(hi));
  state.centers = data::PointSet(dim);
  state.centers.Reserve(header.num_centers);
  for (int64_t i = 0; i < header.num_centers; ++i) {
    state.centers.Append(centers.data() + i * dim);
  }
  return Kde::FromState(std::move(state), rebuild_index);
}

}  // namespace dbs::density
