// Mergeable partial KDE state for sharded builds (DESIGN.md §12).
//
// A PartialKde is a set of per-shard summaries, each carrying everything
// Kde::Fit accumulates in its single pass: the shard's reservoir of kernel
// centers (drawn at the shard's proportional quota from its own RNG
// stream), per-dimension Welford moments, bounds, and the row count.
//
// MergePartialKde is a sorted disjoint union — no floating-point arithmetic
// happens until FinalizeKde reduces the complete set exactly once, in
// ascending shard order. Merge order therefore cannot affect the finalized
// model: the tree-reduce is associative and commutative bitwise, and the
// num_shards == 1 path is pinned bitwise identical to Kde::Fit.

#ifndef DBS_DENSITY_KDE_PARTIAL_H_
#define DBS_DENSITY_KDE_PARTIAL_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/point_set.h"
#include "density/kde.h"
#include "util/shard.h"
#include "util/stats.h"
#include "util/status.h"

namespace dbs::density {

// One shard's contribution to a sharded KDE build.
struct KdeShardPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;  // rows in the whole dataset
  int64_t rows = 0;        // rows this shard actually scanned
  data::PointSet centers;  // reservoir of the shard's kernel-center quota
  std::vector<OnlineMoments> moments;  // per dimension
  data::BoundingBox bounds;
};

// Partial state of a sharded KDE build: per-shard parts in ascending shard
// order, pairwise disjoint. Complete once every shard is present.
struct PartialKde {
  std::vector<KdeShardPart> parts;

  int dim() const {
    return parts.empty() ? 0 : parts.front().centers.dim();
  }
};

// Disjoint union of two partial states (no arithmetic; see header comment).
// Fails if the inputs come from different sharded builds or share a shard.
[[nodiscard]] Result<PartialKde> MergePartialKde(PartialKde a, PartialKde b);

// Reduces a COMPLETE partial state (all shards present) into a fitted Kde:
// centers are concatenated in shard order, moments and bounds merged in
// shard order, then bandwidths derived exactly as Kde::Fit derives them.
// `options` must be the options every FitPartial call used.
[[nodiscard]] Result<Kde> FinalizeKde(PartialKde partial, const KdeOptions& options);

}  // namespace dbs::density

#endif  // DBS_DENSITY_KDE_PARTIAL_H_
