#include "density/dual_tree_kde.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "density/kernel_block.h"

namespace dbs::density {
namespace {

// Safety factor on the m·eps FP-reordering slack folded into each reported
// certificate: the dual-tree summation order differs from the flat path's,
// and the per-node interval endpoints are themselves rounded, so the pure
// interval half-width alone could be violated by last-ulp effects. All
// kernel terms are non-negative (condition number 1), so reordering a
// length-m sum moves it by at most ~m·eps relative; 16x covers the interval
// endpoint rounding and the final normalization multiply with real margin
// while staying negligible against any practical rel_error budget.
constexpr double kFpSlackFactor = 16.0;

}  // namespace

Result<DualTreeKde> DualTreeKde::Build(const Kde& kde,
                                       const DualTreeKdeOptions& options) {
  if (options.leaf_size < 1) {
    return Status::InvalidArgument("leaf_size must be >= 1");
  }
  if (options.query_tile < 1) {
    return Status::InvalidArgument("query_tile must be >= 1");
  }
  if (!std::isfinite(options.rel_error) || options.rel_error < 0) {
    return Status::InvalidArgument("rel_error must be finite and >= 0");
  }
  Kde::State state = kde.ExportState();
  if (state.centers.empty()) {
    return Status::InvalidArgument("kde has no kernel centers");
  }

  DualTreeKde tree;
  tree.n_ = state.n;
  tree.kernel_ = state.kernel;
  tree.centers_ = std::move(state.centers);
  tree.bandwidths_ = std::move(state.bandwidths);
  tree.bounds_ = std::move(state.bounds);
  tree.leaf_size_ = options.leaf_size;
  tree.query_tile_ = options.query_tile;
  tree.rel_error_ = options.rel_error;

  const int d = tree.centers_.dim();
  const int64_t m = tree.centers_.size();
  // Same arithmetic order as Kde::FromState, so norm_factor_ (and with it
  // every density byte) matches the flat evaluator exactly.
  tree.inv_bandwidths_.resize(static_cast<size_t>(d));
  double inv_h_prod = 1.0;
  for (int j = 0; j < d; ++j) {
    tree.inv_bandwidths_[static_cast<size_t>(j)] =
        1.0 / tree.bandwidths_[static_cast<size_t>(j)];
    inv_h_prod *= tree.inv_bandwidths_[static_cast<size_t>(j)];
  }
  tree.norm_factor_ = static_cast<double>(tree.n_) /
                      static_cast<double>(m) * inv_h_prod;
  tree.support_radius_ = KernelSupportRadius(tree.kernel_);
  tree.support_extent_.resize(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    tree.support_extent_[static_cast<size_t>(j)] =
        tree.support_radius_ * tree.bandwidths_[static_cast<size_t>(j)];
  }

  tree.centers_soa_.resize(static_cast<size_t>(d) * m);
  const double* rows = tree.centers_.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int j = 0; j < d; ++j) {
      tree.centers_soa_[static_cast<size_t>(j) * m + i] = rows[i * d + j];
    }
  }

  tree.items_.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    tree.items_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  tree.leaf_soa_.resize(static_cast<size_t>(d) * m);
  tree.nodes_.reserve(static_cast<size_t>(2 * (m / options.leaf_size + 1)));
  tree.root_ = tree.BuildNode(0, static_cast<int32_t>(m));
  return tree;
}

Result<DualTreeKde> DualTreeKde::Build(const Kde& kde,
                                       const KdeOptions& fit_options) {
  DualTreeKdeOptions options;
  options.rel_error = fit_options.dual_tree_rel_error;
  return Build(kde, options);
}

int32_t DualTreeKde::BuildNode(int32_t begin, int32_t end) {
  const int d = centers_.dim();
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(id)].begin = begin;
  nodes_[static_cast<size_t>(id)].end = end;
  node_lo_.resize(static_cast<size_t>(id + 1) * d);
  node_hi_.resize(static_cast<size_t>(id + 1) * d);

  // Tight box over the member centers (exact min/max of the raw
  // coordinates, so the distance bounds below are sound per dimension).
  const double* flat = centers_.flat().data();
  {
    const double* first = flat + static_cast<int64_t>(items_[static_cast<size_t>(begin)]) * d;
    for (int j = 0; j < d; ++j) {
      node_lo_[static_cast<size_t>(id) * d + j] = first[j];
      node_hi_[static_cast<size_t>(id) * d + j] = first[j];
    }
    for (int32_t t = begin + 1; t < end; ++t) {
      const double* c = flat + static_cast<int64_t>(items_[static_cast<size_t>(t)]) * d;
      for (int j = 0; j < d; ++j) {
        double& lo = node_lo_[static_cast<size_t>(id) * d + j];
        double& hi = node_hi_[static_cast<size_t>(id) * d + j];
        if (c[j] < lo) lo = c[j];
        if (c[j] > hi) hi = c[j];
      }
    }
  }
  int axis = -1;
  double best_extent = 0.0;
  for (int j = 0; j < d; ++j) {
    const double extent = node_hi_[static_cast<size_t>(id) * d + j] -
                          node_lo_[static_cast<size_t>(id) * d + j];
    if (extent > best_extent) {
      best_extent = extent;
      axis = j;
    }
  }

  // Leaf: below the size cap, or a degenerate box (all centers identical —
  // no axis can split it). Leaf members are sorted ascending so the leaf
  // summation order is deterministic, and packed into the SoA tile the
  // approximate mode's block loop streams.
  if (end - begin <= leaf_size_ || axis < 0) {
    std::sort(items_.begin() + begin, items_.begin() + end);
    const int64_t count = end - begin;
    double* soa = leaf_soa_.data() + static_cast<size_t>(begin) * d;
    for (int j = 0; j < d; ++j) {
      for (int64_t t = 0; t < count; ++t) {
        soa[static_cast<size_t>(j) * count + t] =
            flat[static_cast<int64_t>(items_[static_cast<size_t>(begin + t)]) * d + j];
      }
    }
    return id;
  }

  // Median split on the widest dimension. The comparator totally orders
  // (coordinate, center index), so the PARTITION — and with it the tree
  // shape, every node box, and the frozen-golden approximate traversal —
  // is deterministic across standard-library implementations.
  const int32_t mid = begin + (end - begin) / 2;
  std::nth_element(items_.begin() + begin, items_.begin() + mid,
                   items_.begin() + end,
                   [flat, d, axis](int32_t a, int32_t b) {
                     const double ca = flat[static_cast<int64_t>(a) * d + axis];
                     const double cb = flat[static_cast<int64_t>(b) * d + axis];
                     if (ca != cb) return ca < cb;
                     return a < b;
                   });
  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[static_cast<size_t>(id)].left = left;
  nodes_[static_cast<size_t>(id)].right = right;
  return id;
}

DualTreeKde::NodeView DualTreeKde::node(int32_t id) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  NodeView view;
  view.is_leaf = n.left < 0;
  view.left = n.left;
  view.right = n.right;
  view.begin = n.begin;
  view.end = n.end;
  view.lo = node_lo_.data() + static_cast<size_t>(id) * centers_.dim();
  view.hi = node_hi_.data() + static_cast<size_t>(id) * centers_.dim();
  return view;
}

// ---------------------------------------------------------------------------
// Exact mode.
//
// Pruning is expressed in the SAME arithmetic the kernel loop applies to an
// individual center: a dimension prunes the node only when the kernel of
// the scaled minimum box distance is exactly zero. Rounding is monotone, so
// every member center's computed |u_j| is >= the scaled gap and its
// computed kernel factor is <= KernelValue(gap * inv_h) == 0 — i.e. a
// pruned subtree contributes exactly +0.0 terms, which the block loop
// skips invisibly. Summing the gathered survivors in ascending center
// order therefore reproduces Kde's ascending-center sum bit for bit.

void DualTreeKde::CollectSurvivors(int32_t id, const double* lo,
                                   const double* hi,
                                   std::vector<int32_t>* out) const {
  const Node& node = nodes_[static_cast<size_t>(id)];
  const int d = centers_.dim();
  const double* nlo = node_lo_.data() + static_cast<size_t>(id) * d;
  const double* nhi = node_hi_.data() + static_cast<size_t>(id) * d;
  for (int j = 0; j < d; ++j) {
    const double below = nlo[j] - hi[j];
    const double above = lo[j] - nhi[j];
    const double gap = below > above ? below : above;
    if (gap > 0.0 &&
        KernelValue(kernel_, gap * inv_bandwidths_[static_cast<size_t>(j)]) ==
            0.0) {
      return;
    }
  }
  if (node.left < 0) {
    out->insert(out->end(), items_.begin() + node.begin,
                items_.begin() + node.end);
    return;
  }
  CollectSurvivors(node.left, lo, hi, out);
  CollectSurvivors(node.right, lo, hi, out);
}

struct DualTreeKde::TileScratch {
  std::vector<int32_t> survivors;  // ascending center indices after sort
  std::vector<double> soa;         // dim arrays of length survivors.size()
  std::vector<double> lo;          // current tile box
  std::vector<double> hi;
};

void DualTreeKde::ExactTile(const double* rows, const double* selves,
                            const int64_t* idx, int64_t count, double* out,
                            TileScratch* scratch) const {
  const int d = centers_.dim();
  scratch->survivors.clear();
  CollectSurvivors(root_, scratch->lo.data(), scratch->hi.data(),
                   &scratch->survivors);
  // Ascending center order: the summation-order contract shared with the
  // flat path (see kernel_block.h).
  std::sort(scratch->survivors.begin(), scratch->survivors.end());
  const int64_t tile = static_cast<int64_t>(scratch->survivors.size());
  scratch->soa.resize(static_cast<size_t>(d) * tile);
  const int64_t m = centers_.size();
  for (int j = 0; j < d; ++j) {
    double* col = scratch->soa.data() + static_cast<size_t>(j) * tile;
    const double* src = centers_soa_.data() + static_cast<size_t>(j) * m;
    for (int64_t t = 0; t < tile; ++t) {
      col[t] = src[scratch->survivors[static_cast<size_t>(t)]];
    }
  }
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = idx[k];
    const double* p = rows + i * d;
    const double sum = SumKernelProductTile(
        kernel_, d, p, inv_bandwidths_.data(), scratch->soa.data(), tile,
        selves != nullptr ? selves + i * d : nullptr);
    out[i] = norm_factor_ * sum;
  }
}

void DualTreeKde::ExactTileRecurse(const double* rows, const double* selves,
                                   int64_t* idx, int64_t count, double* out,
                                   TileScratch* scratch) const {
  const int d = centers_.dim();
  double* lo = scratch->lo.data();
  double* hi = scratch->hi.data();
  const double* first = rows + idx[0] * d;
  for (int j = 0; j < d; ++j) {
    lo[j] = first[j];
    hi[j] = first[j];
  }
  for (int64_t k = 1; k < count; ++k) {
    const double* p = rows + idx[k] * d;
    for (int j = 0; j < d; ++j) {
      if (p[j] < lo[j]) lo[j] = p[j];
      if (p[j] > hi[j]) hi[j] = p[j];
    }
  }
  if (count > query_tile_) {
    int axis = -1;
    double best_extent = 0.0;
    for (int j = 0; j < d; ++j) {
      const double extent = hi[j] - lo[j];
      if (extent > best_extent) {
        best_extent = extent;
        axis = j;
      }
    }
    // axis < 0 means every query in the range is identical — recursing
    // cannot shrink the box, so fall through and evaluate as one tile.
    if (axis >= 0) {
      const int64_t mid = count / 2;
      std::nth_element(idx, idx + mid, idx + count,
                       [rows, d, axis](int64_t a, int64_t b) {
                         const double qa = rows[a * d + axis];
                         const double qb = rows[b * d + axis];
                         if (qa != qb) return qa < qb;
                         return a < b;
                       });
      ExactTileRecurse(rows, selves, idx, mid, out, scratch);
      ExactTileRecurse(rows, selves, idx + mid, count - mid, out, scratch);
      return;
    }
  }
  ExactTile(rows, selves, idx, count, out, scratch);
}

void DualTreeKde::ExactRange(const double* rows, const double* selves,
                             int64_t begin, int64_t end, double* out) const {
  const int64_t n = end - begin;
  if (n <= 0) return;
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = begin + i;
  TileScratch scratch;
  scratch.lo.resize(static_cast<size_t>(centers_.dim()));
  scratch.hi.resize(static_cast<size_t>(centers_.dim()));
  ExactTileRecurse(rows, selves, idx.data(), n, out, &scratch);
}

// ---------------------------------------------------------------------------
// Certified-approximate mode (DESIGN.md §15).

struct DualTreeKde::ApproxAccum {
  double sum = 0.0;    // accepted midpoints + exact leaf sums
  double gap = 0.0;    // accumulated interval widths (upper - lower)
  double lower = 0.0;  // monotone running lower bound on the final sum
};

void DualTreeKde::ApproxNode(int32_t id, const double* p,
                             const double* exclude,
                             ApproxAccum* accum) const {
  const Node& node = nodes_[static_cast<size_t>(id)];
  const int d = centers_.dim();
  const double* lo = node_lo_.data() + static_cast<size_t>(id) * d;
  const double* hi = node_hi_.data() + static_cast<size_t>(id) * d;

  // Per-dimension kernel bounds over the node box: every member center's
  // |u_j| lies in [dlo, dhi] scaled, and every kernel here is non-
  // increasing in |u| — so its factor lies in [K(dhi/h), K(dlo/h)].
  // Rounding is monotone, so the computed interval still brackets every
  // computed factor.
  double kmin_prod = 1.0;
  double kmax_prod = 1.0;
  for (int j = 0; j < d; ++j) {
    const double below = lo[j] - p[j];
    const double above = p[j] - hi[j];
    double dlo = below > above ? below : above;
    if (dlo < 0.0) dlo = 0.0;
    const double span_lo = p[j] - lo[j];
    const double span_hi = hi[j] - p[j];
    const double dhi = span_lo > span_hi ? span_lo : span_hi;
    const double ih = inv_bandwidths_[static_cast<size_t>(j)];
    kmax_prod *= KernelValue(kernel_, dlo * ih);
    kmin_prod *= KernelValue(kernel_, dhi * ih);
  }
  const double count = static_cast<double>(node.end - node.begin);
  const double upper = count * kmax_prod;
  if (upper == 0.0) return;  // exact prune: every member factor is +0.0
  const double lower = count * kmin_prod;

  // A node whose box contains the exclusion point may hold the excluded
  // center, which the interval does not account for — force descent so the
  // exclusion is applied in a leaf's exact block loop.
  bool may_hold_exclude = false;
  if (exclude != nullptr) {
    may_hold_exclude = true;
    for (int j = 0; j < d; ++j) {
      if (exclude[j] < lo[j] || exclude[j] > hi[j]) {
        may_hold_exclude = false;
        break;
      }
    }
  }
  if (!may_hold_exclude) {
    // Error-budget allocation proportional to the node's center share:
    // accepted gaps sum to at most rel_error * final_lower <=
    // rel_error * exact, so the midpoint certificate (half the gap sum)
    // spends at most half the budget (see DESIGN.md §15 for the proof).
    const double gap = upper - lower;
    if (gap <= rel_error_ * accum->lower *
                   (count / static_cast<double>(centers_.size()))) {
      accum->sum += 0.5 * (lower + upper);
      accum->gap += gap;
      accum->lower += lower;
      return;
    }
  }
  if (node.left < 0) {
    const int64_t tile = node.end - node.begin;
    const double* soa = leaf_soa_.data() + static_cast<size_t>(node.begin) * d;
    const double sum = SumKernelProductTile(
        kernel_, d, p, inv_bandwidths_.data(), soa, tile, exclude);
    accum->sum += sum;
    accum->lower += sum;
    return;
  }
  // Descend the nearer child first (scaled min box distance) so the running
  // lower bound grows early and far nodes become acceptable sooner. Ties
  // resolve to the left child — deterministic, like everything else here.
  double child_d2[2] = {0.0, 0.0};
  const int32_t children[2] = {node.left, node.right};
  for (int c = 0; c < 2; ++c) {
    const double* clo = node_lo_.data() + static_cast<size_t>(children[c]) * d;
    const double* chi = node_hi_.data() + static_cast<size_t>(children[c]) * d;
    for (int j = 0; j < d; ++j) {
      const double below = clo[j] - p[j];
      const double above = p[j] - chi[j];
      double gap = below > above ? below : above;
      if (gap < 0.0) gap = 0.0;
      const double u = gap * inv_bandwidths_[static_cast<size_t>(j)];
      child_d2[c] += u * u;
    }
  }
  if (child_d2[0] <= child_d2[1]) {
    ApproxNode(node.left, p, exclude, accum);
    ApproxNode(node.right, p, exclude, accum);
  } else {
    ApproxNode(node.right, p, exclude, accum);
    ApproxNode(node.left, p, exclude, accum);
  }
}

void DualTreeKde::ApproxRange(const double* rows, const double* selves,
                              int64_t begin, int64_t end, double* out,
                              double* bound) const {
  const int d = centers_.dim();
  const double fp_slack = kFpSlackFactor *
                          std::numeric_limits<double>::epsilon() *
                          static_cast<double>(centers_.size());
  for (int64_t i = begin; i < end; ++i) {
    const double* p = rows + i * d;
    const double* exclude = selves != nullptr ? selves + i * d : nullptr;
    ApproxAccum accum;
    ApproxNode(root_, p, exclude, &accum);
    out[i] = norm_factor_ * accum.sum;
    if (bound != nullptr) {
      bound[i] = norm_factor_ * (0.5 * accum.gap + fp_slack * accum.sum);
    }
  }
}

// ---------------------------------------------------------------------------
// DensityEstimator surface.

Status DualTreeKde::BatchWithBound(const double* rows, const double* selves,
                                   int64_t count, double* out, double* bound,
                                   parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  auto shard = [&](int64_t begin, int64_t end) {
    if (rel_error_ > 0.0) {
      ApproxRange(rows, selves, begin, end, out, bound);
    } else {
      ExactRange(rows, selves, begin, end, out);
      if (bound != nullptr) std::fill(bound + begin, bound + end, 0.0);
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

Status DualTreeKde::EvaluateBatch(const double* rows, int64_t count,
                                  double* out,
                                  parallel::BatchExecutor* executor) const {
  return BatchWithBound(rows, /*selves=*/nullptr, count, out,
                        /*bound=*/nullptr, executor);
}

Status DualTreeKde::EvaluateExcludingBatch(
    const double* rows, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  return BatchWithBound(rows, /*selves=*/rows, count, out, /*bound=*/nullptr,
                        executor);
}

Status DualTreeKde::EvaluateExcludingSelvesBatch(
    const double* rows, const double* selves, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  return BatchWithBound(rows, selves, count, out, /*bound=*/nullptr,
                        executor);
}

Status DualTreeKde::EvaluateBatchWithBound(
    const double* rows, int64_t count, double* out, double* bound,
    parallel::BatchExecutor* executor) const {
  return BatchWithBound(rows, /*selves=*/nullptr, count, out, bound,
                        executor);
}

Status DualTreeKde::EvaluateExcludingSelvesBatchWithBound(
    const double* rows, const double* selves, int64_t count, double* out,
    double* bound, parallel::BatchExecutor* executor) const {
  return BatchWithBound(rows, selves, count, out, bound, executor);
}

double DualTreeKde::Evaluate(data::PointView p) const {
  double out = 0.0;
  // Without an executor the batch path cannot fail.
  (void)BatchWithBound(p.data(), /*selves=*/nullptr, 1, &out,
                       /*bound=*/nullptr, /*executor=*/nullptr);
  return out;
}

double DualTreeKde::EvaluateExcluding(data::PointView x,
                                      data::PointView self) const {
  double out = 0.0;
  (void)BatchWithBound(x.data(), self.data(), 1, &out, /*bound=*/nullptr,
                       /*executor=*/nullptr);
  return out;
}

double DualTreeKde::AverageDensity() const {
  const double volume = bounds_.Volume();
  if (volume <= 0) return 0.0;
  return static_cast<double>(n_) / volume;
}

}  // namespace dbs::density
