// One-dimensional kernel functions.
//
// The multi-dimensional estimators in this module use product kernels:
// K_d(u_1..u_d) = prod_j K(u_j), where K is one of the kernels below. Each
// kernel integrates to 1 over the real line. Epanechnikov is the paper's
// choice (§4.2) and is optimal in the asymptotic MISE sense; its compact
// support is what makes the KDE grid index effective.

#ifndef DBS_DENSITY_KERNEL_H_
#define DBS_DENSITY_KERNEL_H_

namespace dbs::density {

enum class KernelType {
  kEpanechnikov = 0,  // 3/4 (1 - u^2) on [-1, 1]
  kQuartic,           // 15/16 (1 - u^2)^2 on [-1, 1] (biweight)
  kTriangular,        // 1 - |u| on [-1, 1]
  kUniform,           // 1/2 on [-1, 1]
  kGaussian,          // standard normal, truncated at |u| <= 4 in practice
};

// Kernel value K(u). Returns 0 outside the support.
double KernelValue(KernelType type, double u);

// Radius of the kernel's support in scaled units: K(u) = 0 for |u| > radius.
// The Gaussian is treated as supported on [-4, 4] (mass beyond is < 7e-5);
// the truncation error is absorbed into the estimator's normalization.
double KernelSupportRadius(KernelType type);

// The canonical-bandwidth factor delta_0(K) relating the kernel to the
// normal-reference rule: h = delta * sigma * n^(-1/(d+4)). For the
// Epanechnikov kernel delta = sqrt(5) (Scott 1992); for the Gaussian 1.
double KernelCanonicalBandwidth(KernelType type);

// Short stable name for reports ("epanechnikov", ...).
const char* KernelTypeName(KernelType type);

}  // namespace dbs::density

#endif  // DBS_DENSITY_KERNEL_H_
