// The frozen per-pair kernel block loop shared by every tuned KDE path.
//
// SumKernelProductTile is THE summation kernel the bitwise-reproducibility
// guarantees rest on: Kde's cell-sorted batch path (DESIGN.md §9) and the
// dual-tree evaluator's exact and leaf paths (DESIGN.md §15) all sum a
// point against an SoA center tile through this one function, so "both
// paths use the same per-pair arithmetic in the same order" is true by
// construction, not by parallel maintenance. Its include list is pinned in
// tools/lint/layers.txt; treat the arithmetic as frozen — any change here
// changes every density byte in the system.
//
// Contract: the tile is summed in ascending tile order, products are taken
// in dimension order, and the accumulator is a single double. A zero kernel
// factor multiplies through to +0.0 instead of branching out early, and
// +0.0 terms are skipped before accumulation — both bitwise invisible,
// because adding +0.0 to a non-negative sum cannot change its bits. The
// consequence the dual-tree evaluator builds on: summing any SUPERSET of
// the in-support centers, in ascending order, yields the identical bits.

#ifndef DBS_DENSITY_KERNEL_BLOCK_H_
#define DBS_DENSITY_KERNEL_BLOCK_H_

#include <algorithm>
#include <cstdint>

#include "density/kernel.h"

namespace dbs::density {

// Tile block width for the batch inner loop: long enough to vectorize,
// small enough that the product buffer stays in L1. Block boundaries are
// bitwise invisible (the accumulator runs across blocks), so this is a
// tuning constant, not a semantic one.
inline constexpr int64_t kKernelTileBlock = 256;

// Ordered kernel-product sum of point `p` (dim doubles) against an SoA
// center tile (`soa` holds dim arrays of length `tile`). `exclude` is the
// coordinates of a center to skip (nullptr = none); a center is excluded
// only when its product is nonzero and every coordinate matches bitwise.
inline double SumKernelProductTile(KernelType kernel, int dim,
                                   const double* p,
                                   const double* inv_bandwidths,
                                   const double* soa, int64_t tile,
                                   const double* exclude) {
  const int d = dim;
  double prod[kKernelTileBlock];
  double sum = 0.0;
  for (int64_t b0 = 0; b0 < tile; b0 += kKernelTileBlock) {
    const int64_t block = std::min(kKernelTileBlock, tile - b0);
    for (int64_t t = 0; t < block; ++t) prod[t] = 1.0;
    if (kernel == KernelType::kEpanechnikov) {
      // Inlined Epanechnikov: identical arithmetic to KernelValue, minus
      // the per-factor call; branch-free so the loop vectorizes.
      for (int j = 0; j < d; ++j) {
        const double pj = p[j];
        const double ih = inv_bandwidths[j];
        const double* col = soa + static_cast<size_t>(j) * tile + b0;
        for (int64_t t = 0; t < block; ++t) {
          const double u = (pj - col[t]) * ih;
          const double a = 1.0 - u * u;
          prod[t] *= a > 0 ? 0.75 * a : 0.0;
        }
      }
    } else {
      for (int j = 0; j < d; ++j) {
        const double pj = p[j];
        const double ih = inv_bandwidths[j];
        const double* col = soa + static_cast<size_t>(j) * tile + b0;
        for (int64_t t = 0; t < block; ++t) {
          prod[t] *= KernelValue(kernel, (pj - col[t]) * ih);
        }
      }
    }
    if (exclude == nullptr) {
      // The sequential accumulator is the one serial FP dependency chain
      // here, and in a pruned tile many gathered centers fall outside the
      // support box (prod == +0.0). Compact the nonzero products —
      // branchless and order-preserving — so the serial chain only runs
      // over terms that matter. Skipping +0.0 additions is bitwise
      // invisible: adding +0.0 to a non-negative accumulator is identity.
      int64_t nz = 0;
      for (int64_t t = 0; t < block; ++t) {
        prod[nz] = prod[t];
        nz += prod[t] != 0.0 ? 1 : 0;
      }
      for (int64_t t = 0; t < nz; ++t) sum += prod[t];
    } else {
      for (int64_t t = 0; t < block; ++t) {
        if (prod[t] != 0.0) {
          bool matches = true;
          for (int j = 0; j < d; ++j) {
            if (soa[static_cast<size_t>(j) * tile + b0 + t] != exclude[j]) {
              matches = false;
              break;
            }
          }
          if (matches) continue;
        }
        sum += prod[t];
      }
    }
  }
  return sum;
}

}  // namespace dbs::density

#endif  // DBS_DENSITY_KERNEL_BLOCK_H_
