#include "density/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbs::density {

std::vector<double> ComputeBandwidths(BandwidthRule rule, KernelType kernel,
                                      const std::vector<double>& sigma,
                                      int64_t m, double fixed_bandwidth) {
  DBS_CHECK(m > 0);
  int dim = static_cast<int>(sigma.size());
  DBS_CHECK(dim > 0);
  std::vector<double> h(dim);
  if (rule == BandwidthRule::kFixed) {
    DBS_CHECK_MSG(fixed_bandwidth > 0, "fixed bandwidth must be positive");
    std::fill(h.begin(), h.end(), fixed_bandwidth);
    return h;
  }
  double d = static_cast<double>(dim);
  double n_factor = std::pow(static_cast<double>(m), -1.0 / (d + 4.0));
  double prefactor = KernelCanonicalBandwidth(kernel) * n_factor;
  if (rule == BandwidthRule::kSilverman) {
    prefactor *= std::pow(4.0 / (d + 2.0), 1.0 / (d + 4.0));
  }
  // Floor keeps degenerate dimensions (zero spread) from collapsing the
  // product kernel to a delta function.
  constexpr double kMinBandwidth = 1e-6;
  for (int j = 0; j < dim; ++j) {
    DBS_CHECK(sigma[j] >= 0);
    h[j] = std::max(prefactor * sigma[j], kMinBandwidth);
  }
  return h;
}

}  // namespace dbs::density
