#include "density/density_estimator.h"

namespace dbs::density {

Status DensityEstimator::EvaluateBatch(const double* rows, int64_t count,
                                       double* out,
                                       parallel::BatchExecutor* executor)
    const {
  if (count <= 0) return Status::Ok();
  const int d = dim();
  auto shard = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out[i] = Evaluate(data::PointView(rows + i * d, d));
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

Status DensityEstimator::EvaluateExcludingBatch(
    const double* rows, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  const int d = dim();
  auto shard = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      data::PointView p(rows + i * d, d);
      out[i] = EvaluateExcluding(p, p);
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

Status DensityEstimator::EvaluateExcludingSelvesBatch(
    const double* rows, const double* selves, int64_t count, double* out,
    parallel::BatchExecutor* executor) const {
  if (count <= 0) return Status::Ok();
  const int d = dim();
  auto shard = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out[i] = EvaluateExcluding(data::PointView(rows + i * d, d),
                                 data::PointView(selves + i * d, d));
    }
  };
  if (executor != nullptr) return executor->ParallelFor(count, shard);
  shard(0, count);
  return Status::Ok();
}

}  // namespace dbs::density
