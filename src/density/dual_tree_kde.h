// Dual-tree KDE evaluation with certified error bounds (DESIGN.md §15).
//
// The flat-grid batch kernel (density/kde.h) wins when the 3^d-cell
// neighborhood around a query holds few centers; once bandwidths grow or
// kernel counts reach the 10k–1M regime, every neighborhood degenerates
// toward "all m centers" and evaluation is O(n·m) again. This evaluator
// builds a kd-tree OVER THE KERNEL CENTERS (median split on the widest
// dimension, SoA-tiled leaves, tight per-node bounding boxes) and prunes
// whole subtrees by node-box-to-query distance bounds, in the spirit of the
// bbrcit KernelDensity kd-tree + Epanechnikov design — `O((n+m) log m)`-ish
// for clustered data instead of O(n·m).
//
// Two modes, selected by DualTreeKdeOptions.rel_error:
//
//   * EXACT (rel_error == 0). Queries are grouped into spatial tiles; for
//     each tile the tree is descended once, pruning every node whose box is
//     farther than the kernel support from the tile's box — an EXACT prune,
//     since each such center's product kernel is +0.0 by compact support.
//     The surviving centers are gathered in ASCENDING CENTER ORDER into an
//     SoA tile and summed through the frozen per-pair block loop
//     (density/kernel_block.h). Because zero terms are bitwise-invisible in
//     that loop, the result is bitwise identical to Kde::EvaluateBatch's
//     ascending-center summation — the index-off path and the scalar
//     EvaluateBrute. (The grid-indexed path visits buckets in hash order
//     and so agrees with all of these only to rounding; the equivalence
//     tests pin the dual tree to the ascending-order contract.)
//
//   * CERTIFIED-APPROXIMATE (rel_error > 0, gated upstream by
//     KdeOptions.dual_tree_rel_error). Per query, the traversal keeps for
//     each node an interval [l, u] containing its true contribution
//     (per-dimension kernel bounds from the node box, times the node's
//     center count). A node is answered by its midpoint (l+u)/2 once
//     u - l <= rel_error * lower_running * (count / m), where
//     lower_running is the monotone running lower bound on the final sum;
//     otherwise it is split, and leaves are summed exactly. Summing the
//     per-node allocations gives the certificate returned alongside each
//     density:
//
//         |approx_i - exact_i| <= bound_i <= rel_error * exact_i
//
//     where exact_i is the exact density at query i (the allocation rule
//     spends at most rel_error/2 of the final lower bound, and the reported
//     bound adds an m·eps FP-reordering slack, so the right inequality
//     holds with real margin whenever rel_error >> m·machine-eps — i.e.
//     any practical budget >= 1e-9). tests/density_dual_tree_budget_test
//     enforces both inequalities property-style.
//
// The evaluator is the third DensityEstimator backend (after the scalar
// default and the Kde grid/batch override): it overrides EvaluateBatch /
// EvaluateExcludingBatch / EvaluateExcludingSelvesBatch with optional
// parallel::BatchExecutor sharding over query tiles, so the serve dispatch
// path (ModelRegistry::LoadKdeFileDualTree) and the samplers consume it
// through the same virtual interface as every other estimator.

#ifndef DBS_DENSITY_DUAL_TREE_KDE_H_
#define DBS_DENSITY_DUAL_TREE_KDE_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/point_set.h"
#include "density/density_estimator.h"
#include "density/kde.h"
#include "density/kernel.h"
#include "util/status.h"

namespace dbs::density {

struct DualTreeKdeOptions {
  // Maximum centers per leaf. 1 gives one point per leaf (tested); larger
  // leaves trade pruning resolution for block-loop throughput.
  int leaf_size = 32;
  // Batch evaluation groups queries into spatial tiles of at most this many
  // points; each tile pays for one tree descent and one gather. Grouping is
  // bitwise invisible (per-query results are independent).
  int64_t query_tile = 32;
  // Certified relative error budget; 0 = exact mode. See header comment.
  double rel_error = 0.0;
};

class DualTreeKde final : public DensityEstimator {
 public:
  // Builds the evaluator over `kde`'s kernel centers. The model state
  // (centers, bandwidths, normalization) is snapshotted, so the Kde need
  // not outlive the result.
  [[nodiscard]] static Result<DualTreeKde> Build(
      const Kde& kde, const DualTreeKdeOptions& options = {});

  // Convenience: picks up the approximate-mode gate from the fit options
  // (KdeOptions.dual_tree_rel_error), defaults for the rest.
  [[nodiscard]] static Result<DualTreeKde> Build(const Kde& kde,
                                                 const KdeOptions& fit_options);

  int dim() const override { return centers_.dim(); }
  int64_t total_mass() const override { return n_; }
  double AverageDensity() const override;

  // In approximate mode these return the certified midpoint estimate; in
  // exact mode they are bitwise identical to the ascending-center Kde
  // paths (see header comment).
  double Evaluate(data::PointView p) const override;
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override;
  [[nodiscard]] Status EvaluateBatch(const double* rows, int64_t count, double* out,
                       parallel::BatchExecutor* executor =
                           nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingBatch(const double* rows, int64_t count,
                                double* out,
                                parallel::BatchExecutor* executor =
                                    nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingSelvesBatch(const double* rows,
                                      const double* selves, int64_t count,
                                      double* out,
                                      parallel::BatchExecutor* executor =
                                          nullptr) const override;

  // Certified evaluation: out[i] is the density estimate and bound[i] the
  // per-query certificate |out[i] - exact_i| <= bound[i] (see header
  // comment; additionally bound[i] <= rel_error * exact_i in approximate
  // mode). Exact mode writes bound[i] = 0 exactly. `bound` may be nullptr
  // to discard the certificates; executor shards over query tiles with the
  // usual backpressure contract, and sharding never changes any byte.
  [[nodiscard]] Status EvaluateBatchWithBound(const double* rows, int64_t count,
                                double* out, double* bound,
                                parallel::BatchExecutor* executor =
                                    nullptr) const;
  [[nodiscard]] Status EvaluateExcludingSelvesBatchWithBound(
      const double* rows, const double* selves, int64_t count, double* out,
      double* bound, parallel::BatchExecutor* executor = nullptr) const;

  double rel_error() const { return rel_error_; }
  int64_t num_kernels() const { return centers_.size(); }
  const data::BoundingBox& bounds() const { return bounds_; }

  // --- Test-only introspection -------------------------------------------
  // Structural view of the tree for invariant checks
  // (tests/density_property_test.cc): leaves partition the permutation
  // `leaf_items()` into ascending-index runs, and every node's box must
  // contain its subtree's centers. Not part of the evaluation API.
  struct NodeView {
    bool is_leaf = false;
    int32_t left = -1;    // node ids; -1 on leaves
    int32_t right = -1;
    int32_t begin = 0;    // range into leaf_items()
    int32_t end = 0;
    const double* lo = nullptr;  // dim() entries each
    const double* hi = nullptr;
  };
  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }
  int32_t root() const { return root_; }
  NodeView node(int32_t id) const;
  const std::vector<int32_t>& leaf_items() const { return items_; }
  const data::PointSet& centers() const { return centers_; }

 private:
  struct Node {
    int32_t left = -1;   // -1 marks a leaf
    int32_t right = -1;
    int32_t begin = 0;   // range into items_
    int32_t end = 0;
  };

  struct TileScratch;
  struct ApproxAccum;

  DualTreeKde() = default;

  int32_t BuildNode(int32_t begin, int32_t end);
  // Appends the original indices of every center in a node whose box is
  // within kernel support of the [lo, hi] query box (exact prune).
  void CollectSurvivors(int32_t node, const double* lo, const double* hi,
                        std::vector<int32_t>* out) const;
  // Exact mode: recursive spatial tiling of the query range, one descent +
  // gather per tile.
  void ExactTileRecurse(const double* rows, const double* selves,
                        int64_t* idx, int64_t count, double* out,
                        TileScratch* scratch) const;
  void ExactTile(const double* rows, const double* selves, const int64_t* idx,
                 int64_t count, double* out, TileScratch* scratch) const;
  void ExactRange(const double* rows, const double* selves, int64_t begin,
                  int64_t end, double* out) const;
  // Approximate mode: per-query descent accumulating interval midpoints.
  void ApproxNode(int32_t node, const double* p, const double* exclude,
                  ApproxAccum* accum) const;
  void ApproxRange(const double* rows, const double* selves, int64_t begin,
                   int64_t end, double* out, double* bound) const;
  [[nodiscard]] Status BatchWithBound(const double* rows, const double* selves,
                        int64_t count, double* out, double* bound,
                        parallel::BatchExecutor* executor) const;

  int64_t n_ = 0;
  KernelType kernel_ = KernelType::kEpanechnikov;
  data::PointSet centers_;              // original fit order
  std::vector<double> bandwidths_;      // per dimension
  std::vector<double> inv_bandwidths_;  // 1/h_j
  std::vector<double> support_extent_;  // support_radius * h_j
  double norm_factor_ = 0.0;            // (n/m) * prod_j (1/h_j)
  double support_radius_ = 1.0;
  data::BoundingBox bounds_;
  int leaf_size_ = 32;
  int64_t query_tile_ = 32;
  double rel_error_ = 0.0;

  // centers_ transposed (dim arrays of length m, original index order):
  // the gather source for exact-mode survivor tiles.
  std::vector<double> centers_soa_;

  // kd-tree over the centers. items_ is a permutation of [0, m) whose leaf
  // ranges are each sorted ascending — the deterministic leaf summation
  // order. Node boxes are tight (computed from the member centers) and live
  // in node_lo_/node_hi_ at node_id * dim. Leaf SoA tiles pack each leaf's
  // centers column-major at items-offset begin * dim in leaf_soa_.
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  std::vector<double> node_lo_;
  std::vector<double> node_hi_;
  std::vector<int32_t> items_;
  std::vector<double> leaf_soa_;
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_DUAL_TREE_KDE_H_
