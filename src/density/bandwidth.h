// Bandwidth selection rules for kernel density estimation.
//
// The bandwidth controls the smoothing radius of each kernel. We implement
// the normal-reference rules of Scott and Silverman, adapted per dimension
// and per kernel (through the canonical-bandwidth factor), plus a fixed
// override for experiments that sweep the bandwidth directly.

#ifndef DBS_DENSITY_BANDWIDTH_H_
#define DBS_DENSITY_BANDWIDTH_H_

#include <cstdint>
#include <vector>

#include "density/kernel.h"

namespace dbs::density {

enum class BandwidthRule {
  // h_j = delta(K) * sigma_j * m^(-1/(d+4)) — Scott's multivariate rule.
  kScott = 0,
  // Scott's rule with Silverman's (4/(d+2))^(1/(d+4)) prefactor.
  kSilverman,
  // The same fixed h on every dimension (set via Options::fixed_bandwidth).
  kFixed,
};

// Computes per-dimension bandwidths for `m` kernel centers in `dim`
// dimensions, given per-dimension standard deviations `sigma` of the data.
// Dimensions with zero spread get a small floor bandwidth so the estimator
// stays finite.
std::vector<double> ComputeBandwidths(BandwidthRule rule, KernelType kernel,
                                      const std::vector<double>& sigma,
                                      int64_t m, double fixed_bandwidth);

}  // namespace dbs::density

#endif  // DBS_DENSITY_BANDWIDTH_H_
