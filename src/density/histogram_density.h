// Dense equi-width histogram density estimator.
//
// The exact (collision-free) counterpart of GridDensity for low
// dimensionality: all g^d cells are materialized, so the estimate is the
// true per-cell count. Useful as a reference in tests (how much does
// hashing blur GridDensity?) and as a third DensityEstimator backend for
// the sampler — the paper emphasizes that any estimation technique plugs in
// (§2.1 lists multi-dimensional histograms first).

#ifndef DBS_DENSITY_HISTOGRAM_DENSITY_H_
#define DBS_DENSITY_HISTOGRAM_DENSITY_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/dataset.h"
#include "density/density_estimator.h"
#include "util/status.h"

namespace dbs::density {

struct HistogramDensityOptions {
  int cells_per_dim = 32;
  // Hard cap on materialized cells; Fit fails above it rather than thrash.
  int64_t max_cells = 64LL * 1024 * 1024;
  // Optional known domain; discovered with an extra pass when empty.
  data::BoundingBox bounds;
};

class HistogramDensity final : public DensityEstimator {
 public:
  [[nodiscard]] static Result<HistogramDensity> Fit(data::DataScan& scan,
                                      const HistogramDensityOptions& options);
  [[nodiscard]] static Result<HistogramDensity> Fit(const data::PointSet& points,
                                      const HistogramDensityOptions& options);

  int dim() const override { return dim_; }
  double Evaluate(data::PointView p) const override;
  int64_t total_mass() const override { return n_; }
  double AverageDensity() const override {
    double volume = bounds_.Volume();
    return volume > 0 ? static_cast<double>(n_) / volume
                      : static_cast<double>(n_);
  }
  // Subtracts the one count `self` contributed when it shares x's cell.
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override;

  // Cell-sorted batch overrides: queries sorted by linear cell id, one
  // count lookup + division per cell group (see grid_density.h — same
  // design, exact cells instead of hashed buckets). Bitwise equal to the
  // scalar calls; same executor/backpressure contract as the base class.
  [[nodiscard]] Status EvaluateBatch(const double* rows, int64_t count, double* out,
                       parallel::BatchExecutor* executor =
                           nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingBatch(const double* rows, int64_t count,
                                double* out,
                                parallel::BatchExecutor* executor =
                                    nullptr) const override;
  [[nodiscard]] Status EvaluateExcludingSelvesBatch(const double* rows,
                                      const double* selves, int64_t count,
                                      double* out,
                                      parallel::BatchExecutor* executor =
                                          nullptr) const override;

  // Exact count of points in p's cell.
  int64_t CellCount(data::PointView p) const;

  int64_t num_cells() const { return static_cast<int64_t>(counts_.size()); }
  double cell_volume() const { return cell_volume_; }

 private:
  HistogramDensity() = default;

  int64_t LinearCell(data::PointView p) const;
  // Cell-sorted evaluation of one contiguous range; `selves` is a parallel
  // exclusion array indexed like `rows` (nullptr = none).
  void BatchRange(const double* rows, const double* selves, int64_t begin,
                  int64_t end, double* out) const;

  int dim_ = 0;
  int cells_per_dim_ = 0;
  int64_t n_ = 0;
  double cell_volume_ = 0.0;
  data::BoundingBox bounds_;
  std::vector<double> cell_width_;
  std::vector<int64_t> counts_;
};

}  // namespace dbs::density

#endif  // DBS_DENSITY_HISTOGRAM_DENSITY_H_
